/**
 * @file
 * Frame and payload (de)serialization for the crispd protocol.
 */

#include "protocol.hh"

#include <cstring>

namespace crisp::service
{

namespace
{

void
put8(std::vector<std::uint8_t>& out, std::uint8_t v)
{
    out.push_back(v);
}

void
put32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
put64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put32(out, static_cast<std::uint32_t>(v));
    put32(out, static_cast<std::uint32_t>(v >> 32));
}

/** Strict bounded reader over a payload (mirrors the objfile loader:
 *  every length is validated before a byte is consumed). */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }

    std::vector<std::uint8_t>
    bytes(std::size_t n)
    {
        need(n);
        std::vector<std::uint8_t> v(bytes_.begin() +
                                        static_cast<std::ptrdiff_t>(pos_),
                                    bytes_.begin() +
                                        static_cast<std::ptrdiff_t>(pos_ +
                                                                    n));
        pos_ += n;
        return v;
    }

    std::string
    str(std::size_t n)
    {
        need(n);
        std::string s(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                      bytes_.begin() +
                          static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return s;
    }

    void
    done() const
    {
        if (pos_ != bytes_.size())
            throw ProtocolError("payload has trailing bytes");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (n > bytes_.size() - pos_)
            throw ProtocolError("payload truncated");
    }

    const std::vector<std::uint8_t>& bytes_;
    std::size_t pos_ = 0;
};

} // namespace

void
appendFrame(std::vector<std::uint8_t>& out, FrameType type,
            const std::vector<std::uint8_t>& payload)
{
    put32(out, kFrameMagic);
    put8(out, static_cast<std::uint8_t>(type));
    put32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

void
FrameParser::feed(const std::uint8_t* data, std::size_t n)
{
    if (poisoned_)
        throw ProtocolError("stream already malformed");
    // Compact the consumed prefix before growing (bounded memory even
    // on a connection that streams forever).
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buf_.erase(buf_.begin(), buf_.begin() +
                                     static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame>
FrameParser::next()
{
    if (poisoned_)
        throw ProtocolError("stream already malformed");
    constexpr std::size_t kHeader = 4 + 1 + 4;
    if (buf_.size() - pos_ < kHeader)
        return std::nullopt;
    const auto* p = buf_.data() + pos_;
    const std::uint32_t magic =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (magic != kFrameMagic) {
        poisoned_ = true;
        throw ProtocolError("bad frame magic");
    }
    const std::uint8_t type = p[4];
    if (type < static_cast<std::uint8_t>(FrameType::kSubmit) ||
        type > static_cast<std::uint8_t>(FrameType::kError)) {
        poisoned_ = true;
        throw ProtocolError("unknown frame type " + std::to_string(type));
    }
    const std::uint32_t len = static_cast<std::uint32_t>(p[5]) |
                              (static_cast<std::uint32_t>(p[6]) << 8) |
                              (static_cast<std::uint32_t>(p[7]) << 16) |
                              (static_cast<std::uint32_t>(p[8]) << 24);
    if (len > maxPayload_) {
        poisoned_ = true;
        throw ProtocolError("frame payload " + std::to_string(len) +
                            " exceeds cap " +
                            std::to_string(maxPayload_));
    }
    if (buf_.size() - pos_ < kHeader + len)
        return std::nullopt;
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.payload.assign(p + kHeader, p + kHeader + len);
    pos_ += kHeader + len;
    return f;
}

std::vector<std::uint8_t>
JobRequest::encode() const
{
    std::vector<std::uint8_t> out;
    out.reserve(40 + image.size());
    put64(out, jobId);
    put32(out, deadlineMs);
    put8(out, maxRetries);
    put8(out, static_cast<std::uint8_t>(foldPolicy));
    put8(out, static_cast<std::uint8_t>(predictor));
    put8(out, static_cast<std::uint8_t>(engine));
    put32(out, dicEntries);
    put32(out, memLatency);
    put64(out, maxCycles);
    put32(out, static_cast<std::uint32_t>(image.size()));
    out.insert(out.end(), image.begin(), image.end());
    return out;
}

JobRequest
JobRequest::decode(const std::vector<std::uint8_t>& payload)
{
    Reader r(payload);
    JobRequest req;
    req.jobId = r.u64();
    req.deadlineMs = r.u32();
    req.maxRetries = r.u8();
    const std::uint8_t fold = r.u8();
    if (fold > static_cast<std::uint8_t>(FoldPolicy::kAll))
        throw ProtocolError("bad fold policy " + std::to_string(fold));
    req.foldPolicy = static_cast<FoldPolicy>(fold);
    const std::uint8_t pred = r.u8();
    if (pred > static_cast<std::uint8_t>(PredictorKind::kDynamic2))
        throw ProtocolError("bad predictor " + std::to_string(pred));
    req.predictor = static_cast<PredictorKind>(pred);
    const std::uint8_t eng = r.u8();
    if (eng > static_cast<std::uint8_t>(EngineKind::kInterp))
        throw ProtocolError("bad engine " + std::to_string(eng));
    req.engine = static_cast<EngineKind>(eng);
    req.dicEntries = r.u32();
    req.memLatency = r.u32();
    req.maxCycles = r.u64();
    const std::uint32_t image_len = r.u32();
    req.image = r.bytes(image_len);
    r.done();
    return req;
}

std::string_view
jobStateName(JobState s)
{
    switch (s) {
      case JobState::kDone:
        return "done";
      case JobState::kFailed:
        return "failed";
      case JobState::kShed:
        return "shed";
      case JobState::kTimedOut:
        return "timed-out";
    }
    return "?";
}

std::vector<std::uint8_t>
JobResult::encode() const
{
    std::vector<std::uint8_t> out;
    out.reserve(40 + detail.size());
    put64(out, jobId);
    put8(out, static_cast<std::uint8_t>(state));
    put8(out, retries);
    put8(out, cacheHit ? 1 : 0);
    put8(out, static_cast<std::uint8_t>(engine));
    put32(out, exitValue);
    put64(out, cycles);
    put64(out, instructions);
    put32(out, static_cast<std::uint32_t>(detail.size()));
    out.insert(out.end(), detail.begin(), detail.end());
    return out;
}

JobResult
JobResult::decode(const std::vector<std::uint8_t>& payload)
{
    Reader r(payload);
    JobResult res;
    res.jobId = r.u64();
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(JobState::kTimedOut))
        throw ProtocolError("bad job state " + std::to_string(state));
    res.state = static_cast<JobState>(state);
    res.retries = r.u8();
    res.cacheHit = r.u8() != 0;
    const std::uint8_t eng = r.u8();
    if (eng > static_cast<std::uint8_t>(EngineKind::kInterp))
        throw ProtocolError("bad engine " + std::to_string(eng));
    res.engine = static_cast<EngineKind>(eng);
    res.exitValue = r.u32();
    res.cycles = r.u64();
    res.instructions = r.u64();
    const std::uint32_t detail_len = r.u32();
    res.detail = r.str(detail_len);
    r.done();
    return res;
}

std::vector<std::uint8_t>
ErrorReply::encode() const
{
    std::vector<std::uint8_t> out;
    out.reserve(12 + text.size());
    put64(out, jobId);
    put32(out, static_cast<std::uint32_t>(text.size()));
    out.insert(out.end(), text.begin(), text.end());
    return out;
}

ErrorReply
ErrorReply::decode(const std::vector<std::uint8_t>& payload)
{
    Reader r(payload);
    ErrorReply e;
    e.jobId = r.u64();
    const std::uint32_t len = r.u32();
    e.text = r.str(len);
    r.done();
    return e;
}

std::vector<std::uint8_t>
ShutdownRequest::encode() const
{
    std::vector<std::uint8_t> out;
    put8(out, drain ? 1 : 0);
    return out;
}

ShutdownRequest
ShutdownRequest::decode(const std::vector<std::uint8_t>& payload)
{
    Reader r(payload);
    ShutdownRequest s;
    const std::uint8_t d = r.u8();
    if (d > 1)
        throw ProtocolError("bad shutdown mode " + std::to_string(d));
    s.drain = d == 1;
    r.done();
    return s;
}

std::string_view
healthStateName(HealthState s)
{
    switch (s) {
      case HealthState::kOk:
        return "ok";
      case HealthState::kDegraded:
        return "degraded";
      case HealthState::kDraining:
        return "draining";
    }
    return "?";
}

std::vector<std::uint8_t>
HealthReply::encode() const
{
    std::vector<std::uint8_t> out;
    put8(out, static_cast<std::uint8_t>(health));
    put64(out, ledger.submitted);
    put64(out, ledger.rejected);
    put64(out, ledger.accepted);
    put64(out, ledger.done);
    put64(out, ledger.failed);
    put64(out, ledger.shed);
    put64(out, ledger.timedOut);
    put64(out, ledger.queued);
    put64(out, ledger.inFlight);
    put64(out, ledger.retriesScheduled);
    put64(out, ledger.resultCacheHits);
    put64(out, ledger.predecodeShares);
    put64(out, ledger.translationShares);
    put64(out, ledger.quarantined);
    put64(out, ledger.degradedTransitions);
    put64(out, ledger.recoveredTransitions);
    return out;
}

HealthReply
HealthReply::decode(const std::vector<std::uint8_t>& payload)
{
    Reader r(payload);
    HealthReply h;
    const std::uint8_t hs = r.u8();
    if (hs > static_cast<std::uint8_t>(HealthState::kDraining))
        throw ProtocolError("bad health state " + std::to_string(hs));
    h.health = static_cast<HealthState>(hs);
    h.ledger.submitted = r.u64();
    h.ledger.rejected = r.u64();
    h.ledger.accepted = r.u64();
    h.ledger.done = r.u64();
    h.ledger.failed = r.u64();
    h.ledger.shed = r.u64();
    h.ledger.timedOut = r.u64();
    h.ledger.queued = r.u64();
    h.ledger.inFlight = r.u64();
    h.ledger.retriesScheduled = r.u64();
    h.ledger.resultCacheHits = r.u64();
    h.ledger.predecodeShares = r.u64();
    h.ledger.translationShares = r.u64();
    h.ledger.quarantined = r.u64();
    h.ledger.degradedTransitions = r.u64();
    h.ledger.recoveredTransitions = r.u64();
    r.done();
    return h;
}

} // namespace crisp::service
