/**
 * @file
 * Bounded MPMC job queue with explicit load-shedding and two-phase
 * close, the backpressure point of the crispd admission pipeline.
 *
 * The queue never blocks a producer: tryPush on a full queue returns
 * kFull immediately and the service turns that into a SHED terminal
 * state — an overloaded daemon answers "no" in microseconds instead of
 * stacking latency onto every queued job (load shedding, not load
 * absorbing). Consumers block in pop until work or close.
 *
 * close(kDrain) lets consumers finish everything queued; close(kAbort)
 * hands the unconsumed remainder back to the closer (who must give
 * each job its terminal state — jobs are accounted for, never
 * dropped on the floor).
 */

#ifndef CRISP_SERVICE_QUEUE_HH
#define CRISP_SERVICE_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace crisp::service
{

template <typename Job> class BoundedQueue
{
  public:
    enum class Push : std::uint8_t { kOk, kFull, kClosed };

    explicit BoundedQueue(std::size_t cap) : cap_(cap) {}

    Push
    tryPush(Job&& job)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (closed_)
                return Push::kClosed;
            if (jobs_.size() >= cap_)
                return Push::kFull;
            jobs_.push_back(std::move(job));
        }
        cv_.notify_one();
        return Push::kOk;
    }

    /** Blocks for work; nullopt once closed and (if draining) empty. */
    std::optional<Job>
    pop()
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return closed_ || !jobs_.empty(); });
        if (jobs_.empty())
            return std::nullopt;
        Job j = std::move(jobs_.front());
        jobs_.pop_front();
        return j;
    }

    /**
     * Close the queue. kDrain leaves queued jobs for consumers (the
     * returned vector is empty); kAbort strips them out and returns
     * them so the caller can terminal-state each one.
     */
    enum class Close : std::uint8_t { kDrain, kAbort };

    std::vector<Job>
    close(Close mode)
    {
        std::vector<Job> orphans;
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
            if (mode == Close::kAbort) {
                orphans.assign(std::make_move_iterator(jobs_.begin()),
                               std::make_move_iterator(jobs_.end()));
                jobs_.clear();
            }
        }
        cv_.notify_all();
        return orphans;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return jobs_.size();
    }

    std::size_t capacity() const { return cap_; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

  private:
    const std::size_t cap_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

} // namespace crisp::service

#endif // CRISP_SERVICE_QUEUE_HH
