/**
 * @file
 * SimService — the fault-tolerant batch-simulation core of crispd,
 * independent of any socket so tests and benchmarks drive it
 * in-process.
 *
 * Robustness envelope (docs/SERVICE.md has the full taxonomy):
 *
 *  - Admission: every job is validated before it can cost anything —
 *    frame caps upstream, image size cap, the hardened object loader,
 *    policy-range checks, memory/cycle budget caps. Invalid jobs are
 *    REJECTED (never accepted, never queued).
 *  - Deadlines: each accepted job carries an absolute wall-clock
 *    deadline measured from admission; queue wait counts. A
 *    util::Watchdog timer fires the simulator's cooperative
 *    cancellation flag, so a non-terminating or slow program ends as
 *    TIMED-OUT without wedging its worker.
 *  - Retries: transient failures (injected chaos faults, unexpected
 *    exceptions) retry with exponential backoff + deterministic
 *    jitter, capped per job and by the service. Deterministic
 *    failures (machine faults, simulated-cycle budget) never retry.
 *  - Load shedding: the bounded queue never blocks admission; a full
 *    queue sheds the job immediately with a SHED terminal state, and
 *    health degrades to DEGRADED until the queue falls back under the
 *    low-water mark.
 *  - Quarantine: a program hash that keeps hitting its deadline is
 *    quarantined — later submissions of the same image fast-fail
 *    instead of burning worker time (one poisoned input cannot
 *    monopolize the fleet).
 *  - Accounting: every submit() ends in exactly one of
 *    {rejected} ∪ {done, failed, shed, timed-out}; the LedgerSnapshot
 *    invariant (accepted == terminals + queued + inFlight) holds at
 *    every instant and is asserted by the chaos harness and at
 *    shutdown.
 *
 * Caching: results are memoized by program-hash × policy (simulation
 * is deterministic), and concurrent jobs over the same program share
 * one eagerly-warmed read-only predecode table (ProgramRegistry).
 */

#ifndef CRISP_SERVICE_SERVICE_HH
#define CRISP_SERVICE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "cache.hh"
#include "protocol.hh"
#include "queue.hh"
#include "util/thread_pool.hh"
#include "util/watchdog.hh"

namespace crisp::service
{

struct ServiceConfig
{
    int workers = 4;
    std::size_t queueCap = 64;

    // Admission caps.
    std::size_t maxImageBytes = 1u << 20;
    std::uint32_t maxMemBytes = 16u << 20;
    std::uint64_t maxCyclesCap = 1'000'000'000ull;
    std::uint64_t defaultMaxCycles = 100'000'000ull;
    std::uint32_t defaultDeadlineMs = 10'000;
    std::uint32_t maxDeadlineMs = 120'000;

    // Retry policy.
    std::uint8_t retryCap = 3;
    std::uint32_t backoffBaseMs = 5;
    std::uint32_t backoffCapMs = 100;

    /** Deadline strikes before a program hash is quarantined. */
    int quarantineStrikes = 2;

    /**
     * Chaos knob: per-mille of job attempts that fail transiently
     * (deterministic in (jobId, attempt)). 0 in production; the chaos
     * harness raises it to exercise the retry/backoff machinery.
     */
    std::uint32_t transientFaultPerMille = 0;

    std::size_t programCacheCap = 64;
    std::size_t resultCacheCap = 4096;

    /** Queue occupancy fractions driving OK <-> DEGRADED. */
    double degradedHighWater = 0.75;
    double degradedLowWater = 0.25;
};

enum class SubmitStatus : std::uint8_t {
    kAccepted, //!< will reach exactly one terminal state
    kRejected, //!< refused at admission; completion NOT invoked
};

class SimService
{
  public:
    /**
     * Terminal-state delivery. Invoked exactly once per accepted job —
     * on a worker thread, or on the submitting thread for jobs that
     * terminal-state at admission (cache hits, sheds, quarantine).
     * Must not call back into submit()/shutdown().
     */
    using Completion = std::function<void(const JobResult&)>;

    explicit SimService(const ServiceConfig& cfg = {});

    /** Equivalent to shutdown(false) (abort). */
    ~SimService();

    SimService(const SimService&) = delete;
    SimService& operator=(const SimService&) = delete;

    /**
     * Admit one job. @p why receives the rejection reason when the
     * result is kRejected.
     */
    SubmitStatus submit(const JobRequest& req, Completion done,
                        std::string* why = nullptr);

    /**
     * Stop the service. @p drain lets queued jobs run to completion;
     * otherwise they are shed (each still gets its terminal state).
     * Running jobs always finish (they are bounded by their
     * deadlines). Idempotent.
     */
    void shutdown(bool drain);

    /** Block until no job is queued or running. */
    void quiesce();

    HealthState health() const;
    LedgerSnapshot ledger() const;

  private:
    struct Job
    {
        std::uint64_t jobId = 0;
        PolicyKey key;
        SimConfig simCfg;
        std::uint8_t maxRetries = 0;
        std::chrono::steady_clock::time_point deadline;
        std::shared_ptr<ProgramRegistry::Entry> program;
        Completion done;
    };

    void workerLane();
    JobResult runJob(Job& job);
    void finish(const Job& job, JobResult res);
    /** Record one deadline strike against a program hash. */
    void strike(std::uint64_t hash);
    /** Deterministic chaos coin for (jobId, attempt). */
    bool chaosTransient(std::uint64_t job_id, int attempt) const;
    void noteShedLocked();
    void updateHealthLocked();
    /** Interruptible backoff sleep; returns false if shutting down. */
    bool backoffSleep(std::uint64_t job_id, int attempt,
                      std::chrono::steady_clock::time_point deadline);

    ServiceConfig cfg_;
    ProgramRegistry registry_;
    ResultCache results_;
    util::Watchdog watchdog_;
    BoundedQueue<Job> queue_;

    mutable std::mutex mu_; //!< ledger + health + quarantine
    std::condition_variable idleCv_;
    LedgerSnapshot ledger_;
    HealthState health_ = HealthState::kOk;
    std::map<std::uint64_t, int> deadlineStrikes_;
    bool shutdownStarted_ = false;
    std::atomic<bool> shutdownRequested_{false};
    std::atomic<bool> abortRequested_{false};

    std::mutex backoffMu_;
    std::condition_variable backoffCv_;

    /** Started last, stopped first: lanes reference everything above. */
    std::unique_ptr<util::ThreadPool> pool_;
};

} // namespace crisp::service

#endif // CRISP_SERVICE_SERVICE_HH
