/**
 * @file
 * Program registry and result cache implementation.
 */

#include "cache.hh"

#include <algorithm>

namespace crisp::service
{

std::uint64_t
fnv1a(const std::vector<std::uint8_t>& bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::shared_ptr<ProgramRegistry::Entry>
ProgramRegistry::intern(std::uint64_t hash, Program&& prog)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
        lru_.remove(hash);
        lru_.push_back(hash);
        return it->second;
    }
    auto entry = std::make_shared<Entry>();
    entry->prog = std::move(prog);
    entry->hash = hash;
    // The cache references entry->prog; the entry lives behind a
    // shared_ptr and never moves, so the reference stays valid for the
    // cache's whole life even across registry eviction.
    entry->predecode = std::make_unique<PredecodeCache>(entry->prog);
    entries_.emplace(hash, entry);
    lru_.push_back(hash);
    evictIfNeeded();
    return entry;
}

PredecodeCache*
ProgramRegistry::sharedTables(const std::shared_ptr<Entry>& entry,
                              FoldPolicy policy)
{
    const auto p = static_cast<std::size_t>(policy);
    // Warm under the registry lock: after warmAll succeeds the table
    // is fully memoized and therefore read-only, so workers may share
    // it without further locking.
    std::lock_guard<std::mutex> lk(mu_);
    if (entry->warmFailed[p])
        return nullptr;
    if (!entry->warmed[p]) {
        if (!entry->predecode->warmAll(policy)) {
            entry->warmFailed[p] = true;
            return nullptr;
        }
        entry->warmed[p] = true;
    }
    return entry->predecode.get();
}

const Translation*
ProgramRegistry::sharedTranslation(const std::shared_ptr<Entry>& entry,
                                   FoldPolicy policy)
{
    const auto p = static_cast<std::size_t>(policy);
    std::lock_guard<std::mutex> lk(mu_);
    if (entry->warmFailed[p])
        return nullptr;
    if (!entry->warmed[p]) {
        if (!entry->predecode->warmAll(policy)) {
            entry->warmFailed[p] = true;
            return nullptr;
        }
        entry->warmed[p] = true;
    }
    if (!entry->translation[p]) {
        // Built once under the lock over the warmed (read-only)
        // predecode tables; immutable afterwards, so fast-engine
        // workers share it without further locking. References
        // entry->prog, which never moves behind its shared_ptr.
        entry->translation[p] = std::make_unique<Translation>(
            entry->prog, policy, entry->predecode.get(),
            /*enable_chaining=*/true);
    }
    return entry->translation[p].get();
}

std::size_t
ProgramRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

void
ProgramRegistry::evictIfNeeded()
{
    while (entries_.size() > cap_ && !lru_.empty()) {
        // Holders of the shared_ptr (running jobs) keep the entry
        // alive; eviction only forgets it for future interns.
        entries_.erase(lru_.front());
        lru_.pop_front();
    }
}

std::optional<JobResult>
ResultCache::lookup(const PolicyKey& key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    lru_.splice(lru_.end(), lru_, it->second.lruIt);
    JobResult r = it->second.result;
    r.cacheHit = true;
    return r;
}

void
ResultCache::store(const PolicyKey& key, const JobResult& result)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second.result = result;
        lru_.splice(lru_.end(), lru_, it->second.lruIt);
        return;
    }
    lru_.push_back(key);
    Slot slot;
    slot.result = result;
    slot.lruIt = std::prev(lru_.end());
    entries_.emplace(key, std::move(slot));
    while (entries_.size() > cap_ && !lru_.empty()) {
        entries_.erase(lru_.front());
        lru_.pop_front();
    }
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

} // namespace crisp::service
