/**
 * @file
 * Server-side caches keyed on program-hash × policy.
 *
 * Two layers, both bounded and LRU-evicted:
 *
 *  - ProgramRegistry interns parsed programs by FNV-1a hash of their
 *    object-file bytes. Each entry can hold predecode tables warmed
 *    eagerly (PredecodeCache::warmAll) so every worker simulating the
 *    same program × fold policy shares one read-only decode table —
 *    the PR 2 predecode sharing, promoted from replay loops to a
 *    multi-tenant service. A program whose text contains an address
 *    that throws on decode is marked unshareable for that policy and
 *    each of its runs pays for a private lazy cache instead (correct
 *    first, fast second).
 *
 *  - ResultCache memoizes terminal kDone results by hash × the full
 *    policy key. Simulation is deterministic, so the millionth request
 *    for a hot workload is a map lookup, not a simulation.
 *
 * Both are internally locked; entries handed out are shared_ptrs, so
 * eviction never invalidates a running job's tables.
 */

#ifndef CRISP_SERVICE_CACHE_HH
#define CRISP_SERVICE_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "isa/program.hh"
#include "protocol.hh"
#include "sim/predecode.hh"
#include "sim/translate.hh"

namespace crisp::service
{

/** FNV-1a 64-bit over raw bytes (the program identity hash). */
std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes);

/** Everything that makes two jobs' simulations identical. */
struct PolicyKey
{
    std::uint64_t hash = 0;
    FoldPolicy foldPolicy = FoldPolicy::kCrisp;
    PredictorKind predictor = PredictorKind::kStaticBit;
    /** Fast and cycle runs of the same program produce different
     *  payloads (cycles vs. none) — the engine is part of identity. */
    EngineKind engine = EngineKind::kCycle;
    std::uint32_t dicEntries = 32;
    std::uint32_t memLatency = 3;
    std::uint64_t maxCycles = 0;

    auto
    tie() const
    {
        return std::make_tuple(hash, foldPolicy, predictor, engine,
                               dicEntries, memLatency, maxCycles);
    }
    bool operator<(const PolicyKey& o) const { return tie() < o.tie(); }
};

class ProgramRegistry
{
  public:
    struct Entry
    {
        Program prog;
        std::uint64_t hash = 0;
        /** Tables over prog; policies marked warmed are read-only. */
        std::unique_ptr<PredecodeCache> predecode;
        bool warmed[3] = {false, false, false};
        bool warmFailed[3] = {false, false, false};
        /** Warm threaded-code translations over prog, one per fold
         *  policy (chaining on — the service default). Built once
         *  under the registry lock, read-only thereafter: the
         *  million-th fast-engine request for a hot program pays zero
         *  translate cost. */
        std::unique_ptr<Translation> translation[3];
    };

    explicit ProgramRegistry(std::size_t cap) : cap_(cap) {}

    /**
     * Intern @p prog (already validated by the hardened loader) under
     * @p hash, or return the existing entry. The returned entry is
     * immutable except through registry methods.
     */
    std::shared_ptr<Entry> intern(std::uint64_t hash, Program&& prog);

    /**
     * The shared warmed predecode tables for @p policy, warming them
     * now if this is the first request. @return nullptr when the
     * program is unshareable under that policy (caller uses a private
     * lazy cache).
     */
    PredecodeCache* sharedTables(const std::shared_ptr<Entry>& entry,
                                 FoldPolicy policy);

    /**
     * The warm shared Translation for @p policy (chaining on),
     * building it now over the warmed predecode tables if this is the
     * first fast-engine request. @return nullptr when the program is
     * unshareable under that policy — FastEngine then builds its
     * private translation, exactly as before.
     */
    const Translation*
    sharedTranslation(const std::shared_ptr<Entry>& entry,
                      FoldPolicy policy);

    std::size_t size() const;

  private:
    void evictIfNeeded();

    const std::size_t cap_;
    mutable std::mutex mu_;
    std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
    /** LRU order, most recent at the back. */
    std::list<std::uint64_t> lru_;
};

/** Memoized terminal results (kDone only — failures are re-earned). */
class ResultCache
{
  public:
    explicit ResultCache(std::size_t cap) : cap_(cap) {}

    /** @return the cached result with cacheHit set, if present. */
    std::optional<JobResult> lookup(const PolicyKey& key);

    void store(const PolicyKey& key, const JobResult& result);

    std::size_t size() const;

  private:
    const std::size_t cap_;
    mutable std::mutex mu_;
    struct Slot
    {
        JobResult result;
        std::list<PolicyKey>::iterator lruIt;
    };
    std::map<PolicyKey, Slot> entries_;
    std::list<PolicyKey> lru_; //!< most recent at the back
};

} // namespace crisp::service

#endif // CRISP_SERVICE_CACHE_HH
