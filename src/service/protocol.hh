/**
 * @file
 * The crispd wire protocol: length-prefixed binary frames over a local
 * stream socket.
 *
 * Every frame is
 *
 *   magic   u32   0x43525350 ("CRSP" pronounced over the wire, LE)
 *   type    u8    FrameType
 *   length  u32   payload byte count (<= kMaxFramePayload)
 *   payload length bytes
 *
 * followed immediately by the next frame. The parser is strict by
 * design — the daemon's first line of defence: a bad magic, an unknown
 * type or an oversized declared length is a ProtocolError, and crispd
 * answers with one kError frame and drops the connection. Nothing about
 * a malformed byte stream can reach the job queue.
 *
 * Payload encodings are fixed little-endian structs (no varints, no
 * optional fields) so a frame either parses completely or fails loudly.
 * The program image inside a kSubmit payload is a standard CRISP object
 * file (isa/objfile.hh) and is re-validated by the hardened loader at
 * admission — the frame layer only enforces size caps.
 */

#ifndef CRISP_SERVICE_PROTOCOL_HH
#define CRISP_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/types.hh"
#include "sim/config.hh"

namespace crisp::service
{

/** Malformed frame or payload. Connection-fatal by policy. */
class ProtocolError : public CrispError
{
  public:
    using CrispError::CrispError;
};

inline constexpr std::uint32_t kFrameMagic = 0x43525350u;

/** Hard cap on a frame payload (admission cap for images is lower). */
inline constexpr std::uint32_t kMaxFramePayload = 8u << 20;

enum class FrameType : std::uint8_t {
    kSubmit = 1,      //!< client -> daemon: one simulation job
    kResult = 2,      //!< daemon -> client: one terminal job result
    kHealth = 3,      //!< client -> daemon: health/ledger probe
    kHealthReply = 4, //!< daemon -> client: HealthReply payload
    kShutdown = 5,    //!< client -> daemon: drain/abort shutdown
    kError = 6,       //!< daemon -> client: request-level error text
};

struct Frame
{
    FrameType type = FrameType::kError;
    std::vector<std::uint8_t> payload;
};

/** Append one whole frame to @p out. */
void appendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::vector<std::uint8_t>& payload);

/**
 * Incremental strict frame parser. feed() raw bytes as they arrive;
 * next() yields complete frames in order. Any malformation throws
 * ProtocolError and poisons the parser (every later call throws too) —
 * a stream is trusted until its first bad byte and never again.
 */
class FrameParser
{
  public:
    explicit FrameParser(std::uint32_t maxPayload = kMaxFramePayload)
        : maxPayload_(maxPayload)
    {}

    void feed(const std::uint8_t* data, std::size_t n);

    /** One complete frame, or nullopt until more bytes arrive. */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::uint32_t maxPayload_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool poisoned_ = false;
};

// --- Payloads ---------------------------------------------------------

/** One simulation job: policy knobs + a CRISP object image. */
struct JobRequest
{
    std::uint64_t jobId = 0;
    /** Wall-clock budget from admission (0: service default). Queue
     *  wait counts against it — an overloaded daemon times jobs out
     *  rather than serving them arbitrarily late. */
    std::uint32_t deadlineMs = 0;
    /** Retries after a transient failure (capped by the service). */
    std::uint8_t maxRetries = 0;
    FoldPolicy foldPolicy = FoldPolicy::kCrisp;
    PredictorKind predictor = PredictorKind::kStaticBit;
    /**
     * Execution engine. kCycle is the timed pipeline; kFast is the
     * threaded-code functional engine (architectural results only,
     * cycles reported as 0) for jobs that don't need timing. kInterp
     * is rejected at admission — the daemon serves the fast engine
     * for architectural work.
     */
    EngineKind engine = EngineKind::kCycle;
    std::uint32_t dicEntries = 32;
    std::uint32_t memLatency = 3;
    /** Simulated-cycle budget (0: service default; capped). For
     *  engine=fast this bounds apparent instructions instead. */
    std::uint64_t maxCycles = 0;
    /** Serialized CRISP object file (isa/objfile.hh). */
    std::vector<std::uint8_t> image;

    std::vector<std::uint8_t> encode() const;
    /** @throws ProtocolError on any malformation. */
    static JobRequest decode(const std::vector<std::uint8_t>& payload);
};

/** The exactly-one terminal state of every accepted job. */
enum class JobState : std::uint8_t {
    kDone = 0,     //!< simulated to halt; stats attached
    kFailed = 1,   //!< machine fault / cycle budget / retries exhausted
    kShed = 2,     //!< load-shed (queue full or aborted shutdown)
    kTimedOut = 3, //!< wall-clock deadline fired
};

std::string_view jobStateName(JobState s);

struct JobResult
{
    std::uint64_t jobId = 0;
    JobState state = JobState::kFailed;
    /** Attempts beyond the first (retry accounting). */
    std::uint8_t retries = 0;
    /** True when served from the result cache (no simulation ran). */
    bool cacheHit = false;
    /** Engine that produced (or would have produced) the result —
     *  part of the cache key, so a cached cycle result is never
     *  served to a fast-engine request or vice versa. */
    EngineKind engine = EngineKind::kCycle;
    /** Program exit value (the accumulator) when state == kDone. */
    std::uint32_t exitValue = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Failure/shed/timeout reason, empty when done. */
    std::string detail;

    std::vector<std::uint8_t> encode() const;
    static JobResult decode(const std::vector<std::uint8_t>& payload);
};

/** Monotonic service counters; see SimService for the invariant. */
struct LedgerSnapshot
{
    std::uint64_t submitted = 0; //!< submit() calls
    std::uint64_t rejected = 0;  //!< refused at admission (not accepted)
    std::uint64_t accepted = 0;  //!< passed admission
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t queued = 0;   //!< currently waiting (not terminal)
    std::uint64_t inFlight = 0; //!< currently running (not terminal)
    std::uint64_t retriesScheduled = 0;
    std::uint64_t resultCacheHits = 0;
    std::uint64_t predecodeShares = 0; //!< runs on a shared warm table
    /** Fast-engine runs that reused a registry-warm Translation —
     *  zero translate cost, the warm-replay path end to end. */
    std::uint64_t translationShares = 0;
    std::uint64_t quarantined = 0;     //!< fast-failed by quarantine
    std::uint64_t degradedTransitions = 0; //!< OK -> DEGRADED edges
    std::uint64_t recoveredTransitions = 0; //!< DEGRADED -> OK edges

    /**
     * The crash-safety bookkeeping invariant: every accepted job is in
     * exactly one place — queued, running, or exactly one terminal
     * state. Checked after every chaos run and at daemon shutdown
     * (where queued and inFlight must both be zero).
     */
    bool
    consistent() const
    {
        return submitted == accepted + rejected &&
               accepted ==
                   done + failed + shed + timedOut + queued + inFlight;
    }
};

/** kError payload: request-level (jobId set) or connection-level (0). */
struct ErrorReply
{
    std::uint64_t jobId = 0;
    std::string text;

    std::vector<std::uint8_t> encode() const;
    static ErrorReply decode(const std::vector<std::uint8_t>& payload);
};

/** kShutdown payload. */
struct ShutdownRequest
{
    /** true: finish queued jobs; false: shed them (each still gets a
     *  terminal state). */
    bool drain = true;

    std::vector<std::uint8_t> encode() const;
    static ShutdownRequest
    decode(const std::vector<std::uint8_t>& payload);
};

enum class HealthState : std::uint8_t {
    kOk = 0,
    kDegraded = 1, //!< shedding or above the queue high-water mark
    kDraining = 2, //!< shutdown in progress
};

std::string_view healthStateName(HealthState s);

struct HealthReply
{
    HealthState health = HealthState::kOk;
    LedgerSnapshot ledger;

    std::vector<std::uint8_t> encode() const;
    static HealthReply decode(const std::vector<std::uint8_t>& payload);
};

} // namespace crisp::service

#endif // CRISP_SERVICE_PROTOCOL_HH
