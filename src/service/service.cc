/**
 * @file
 * SimService implementation. See service.hh for the robustness
 * contract; the comments here explain only the locking and ordering
 * choices that keep the ledger invariant true at every instant.
 */

#include "service.hh"

#include <algorithm>
#include <sstream>

#include "isa/objfile.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"

namespace crisp::service
{

namespace
{

/** splitmix64 — the deterministic coin behind chaos faults + jitter. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SimService::SimService(const ServiceConfig& cfg)
    : cfg_(cfg), registry_(cfg.programCacheCap),
      results_(cfg.resultCacheCap), queue_(cfg.queueCap)
{
    const int lanes = std::max(1, cfg_.workers);
    pool_ = std::make_unique<util::ThreadPool>(lanes);
    for (int i = 0; i < lanes; ++i)
        pool_->submit([this] { workerLane(); });
}

SimService::~SimService()
{
    shutdown(false);
}

SubmitStatus
SimService::submit(const JobRequest& req, Completion done,
                   std::string* why)
{
    auto reject = [&](const std::string& reason) {
        if (why != nullptr)
            *why = reason;
        std::lock_guard<std::mutex> lk(mu_);
        ++ledger_.submitted;
        ++ledger_.rejected;
        return SubmitStatus::kRejected;
    };

    if (shutdownRequested_.load(std::memory_order_relaxed))
        return reject("service is draining");

    // --- Admission validation: nothing below may cost worker time ----
    if (req.image.size() > cfg_.maxImageBytes)
        return reject("image of " + std::to_string(req.image.size()) +
                      " bytes exceeds the admission cap of " +
                      std::to_string(cfg_.maxImageBytes));
    if (req.foldPolicy > FoldPolicy::kAll)
        return reject("fold policy out of range");
    if (req.predictor > PredictorKind::kDynamic2)
        return reject("predictor out of range");
    if (req.engine > EngineKind::kInterp)
        return reject("engine out of range");
    if (req.engine == EngineKind::kInterp)
        return reject("engine=interp is not served; use engine=fast "
                      "for architectural-only runs");
    if (!isPow2(req.dicEntries) || req.dicEntries > 65536)
        return reject("dicEntries must be a power of two <= 65536");
    if (req.memLatency > 10'000)
        return reject("memLatency out of range");

    Program prog;
    try {
        // The hardened loader: every declared length validated before a
        // byte is trusted.
        prog = loadObject(req.image);
    } catch (const CrispError& e) {
        return reject(std::string("object rejected by loader: ") +
                      e.what());
    }
    if (prog.memBytes > cfg_.maxMemBytes)
        return reject("program declares " +
                      std::to_string(prog.memBytes) +
                      " memory bytes, above the service cap of " +
                      std::to_string(cfg_.maxMemBytes));

    // Soft knobs are clamped, not rejected: a too-generous budget is a
    // policy matter, not a malformed request.
    const std::uint32_t deadline_ms = std::min(
        req.deadlineMs == 0 ? cfg_.defaultDeadlineMs : req.deadlineMs,
        cfg_.maxDeadlineMs);
    const std::uint64_t max_cycles = std::min(
        req.maxCycles == 0 ? cfg_.defaultMaxCycles : req.maxCycles,
        cfg_.maxCyclesCap);

    Job job;
    job.jobId = req.jobId;
    job.key.hash = fnv1a(req.image);
    job.key.foldPolicy = req.foldPolicy;
    job.key.predictor = req.predictor;
    job.key.engine = req.engine;
    job.key.dicEntries = req.dicEntries;
    job.key.memLatency = req.memLatency;
    job.key.maxCycles = max_cycles;
    job.simCfg.foldPolicy = req.foldPolicy;
    job.simCfg.predictor = req.predictor;
    job.simCfg.dicEntries = static_cast<int>(req.dicEntries);
    job.simCfg.memLatency = static_cast<int>(req.memLatency);
    job.simCfg.maxCycles = max_cycles;
    job.maxRetries =
        std::min<std::uint8_t>(req.maxRetries, cfg_.retryCap);
    // Deadline from ADMISSION: queue wait counts. An overloaded daemon
    // times jobs out instead of serving them arbitrarily late.
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
    job.done = std::move(done);

    // --- Accepted. Fast terminal states first. -----------------------
    // Quarantine: a hash that keeps blowing deadlines fast-fails here
    // so one poisoned input cannot monopolize the worker fleet.
    int strikes = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = deadlineStrikes_.find(job.key.hash);
        if (it != deadlineStrikes_.end() &&
            it->second >= cfg_.quarantineStrikes) {
            strikes = it->second;
            ++ledger_.submitted;
            ++ledger_.accepted;
            ++ledger_.quarantined;
            ++ledger_.failed;
        }
    }
    if (strikes > 0) {
        JobResult res;
        res.jobId = job.jobId;
        res.engine = req.engine;
        res.state = JobState::kFailed;
        res.detail = "program quarantined after " +
                     std::to_string(strikes) + " deadline strikes";
        job.done(res);
        return SubmitStatus::kAccepted;
    }

    // Result cache: deterministic simulation means the millionth
    // request for a hot workload is a map lookup.
    if (auto cached = results_.lookup(job.key)) {
        cached->jobId = job.jobId;
        cached->retries = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++ledger_.submitted;
            ++ledger_.accepted;
            ++ledger_.done;
            ++ledger_.resultCacheHits;
        }
        job.done(*cached);
        return SubmitStatus::kAccepted;
    }

    job.program = registry_.intern(job.key.hash, std::move(prog));

    // Count the job as queued BEFORE pushing: a worker may pop it the
    // instant it lands, and its queued-- must never race ahead of our
    // queued++ (the ledger invariant holds at every instant).
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++ledger_.submitted;
        ++ledger_.accepted;
        ++ledger_.queued;
    }
    Completion cb = job.done; // survives the move into the queue
    const std::uint64_t job_id = job.jobId;
    const auto push = queue_.tryPush(std::move(job));
    if (push == BoundedQueue<Job>::Push::kOk) {
        std::lock_guard<std::mutex> lk(mu_);
        updateHealthLocked();
        return SubmitStatus::kAccepted;
    }

    // Shed: the queue never blocks admission — a full daemon answers
    // "no" in microseconds instead of stacking latency on everyone.
    {
        std::lock_guard<std::mutex> lk(mu_);
        --ledger_.queued;
        ++ledger_.shed;
        noteShedLocked();
    }
    JobResult res;
    res.jobId = job_id;
    res.engine = req.engine;
    res.state = JobState::kShed;
    res.detail = push == BoundedQueue<Job>::Push::kFull
                     ? "queue full (load shed)"
                     : "daemon shutting down";
    cb(res);
    return SubmitStatus::kAccepted;
}

void
SimService::workerLane()
{
    while (auto job = queue_.pop()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            --ledger_.queued;
            ++ledger_.inFlight;
            updateHealthLocked();
        }
        JobResult res = runJob(*job);
        finish(*job, std::move(res));
    }
}

JobResult
SimService::runJob(Job& job)
{
    JobResult res;
    res.jobId = job.jobId;
    res.engine = job.key.engine;
    int attempt = 0;
    for (;;) {
        res.retries = static_cast<std::uint8_t>(
            std::min(attempt, 255));
        if (std::chrono::steady_clock::now() >= job.deadline) {
            res.state = JobState::kTimedOut;
            res.detail = attempt == 0
                             ? "deadline expired before the run started "
                               "(queue wait counts)"
                             : "deadline expired across retries";
            strike(job.key.hash);
            return res;
        }

        bool transient = false;
        std::string transient_why;
        if (chaosTransient(job.jobId, attempt)) {
            transient = true;
            transient_why = "injected transient fault";
        } else {
            try {
                const auto timer = watchdog_.armAt(job.deadline);
                PredecodeCache* tables = registry_.sharedTables(
                    job.program, job.simCfg.foldPolicy);
                if (tables != nullptr) {
                    std::lock_guard<std::mutex> lk(mu_);
                    ++ledger_.predecodeShares;
                }
                // Architectural-only jobs run on the threaded-code
                // fast engine (cycles reported as 0); timed jobs on
                // the cycle pipeline. Both share the warm predecode
                // tables and honor the same cooperative cancel flag.
                // Fast jobs additionally reuse the registry's warm
                // Translation, so a hot program pays zero decode AND
                // zero translate cost per request.
                SimStats st;
                Word accum = 0;
                if (job.key.engine == EngineKind::kFast) {
                    const Translation* warm =
                        job.simCfg.enableChaining
                            ? registry_.sharedTranslation(
                                  job.program, job.simCfg.foldPolicy)
                            : nullptr;
                    if (warm != nullptr) {
                        std::lock_guard<std::mutex> lk(mu_);
                        ++ledger_.translationShares;
                    }
                    FastEngine eng(job.program->prog, job.simCfg,
                                   tables, warm);
                    eng.setCancelFlag(&timer->fired);
                    st = eng.run();
                    accum = eng.accum();
                } else {
                    CrispCpu cpu(job.program->prog, job.simCfg,
                                 tables);
                    cpu.setCancelFlag(&timer->fired);
                    st = cpu.run();
                    accum = cpu.accum();
                }
                timer->disarm();
                if (st.cancelled) {
                    res.state = JobState::kTimedOut;
                    res.detail =
                        "wall-clock deadline fired mid-simulation";
                    strike(job.key.hash);
                    return res;
                }
                if (st.faulted) {
                    // Deterministic: retrying would fault identically.
                    res.state = JobState::kFailed;
                    res.detail = "machine fault: " + st.faultReason;
                    return res;
                }
                if (st.timedOut) {
                    // Also deterministic (simulated cycles or
                    // instructions, not wall clock).
                    res.state = JobState::kFailed;
                    res.detail =
                        job.key.engine == EngineKind::kFast
                            ? "instruction budget of " +
                                  std::to_string(
                                      job.simCfg.maxCycles) +
                                  " exhausted"
                            : "simulated-cycle budget of " +
                                  std::to_string(
                                      job.simCfg.maxCycles) +
                                  " exhausted";
                    return res;
                }
                res.state = JobState::kDone;
                res.exitValue = static_cast<std::uint32_t>(accum);
                res.cycles = st.cycles;
                res.instructions = st.apparent;
                res.detail.clear();
                results_.store(job.key, res);
                return res;
            } catch (const std::exception& e) {
                // Unexpected (the simulator's own invariants tripped,
                // allocation failure, ...): contained here — a poisoned
                // job must never take its worker down — and treated as
                // transient.
                transient = true;
                transient_why =
                    std::string("unexpected exception: ") + e.what();
            }
        }

        (void)transient;
        if (attempt >= static_cast<int>(job.maxRetries)) {
            res.state = JobState::kFailed;
            res.detail = transient_why + "; retries exhausted after " +
                         std::to_string(attempt + 1) + " attempts";
            return res;
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++ledger_.retriesScheduled;
        }
        ++attempt;
        if (!backoffSleep(job.jobId, attempt, job.deadline)) {
            res.state = JobState::kFailed;
            res.retries = static_cast<std::uint8_t>(attempt);
            res.detail =
                transient_why + "; shutdown interrupted the backoff";
            return res;
        }
    }
}

void
SimService::finish(const Job& job, JobResult res)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        --ledger_.inFlight;
        switch (res.state) {
          case JobState::kDone:
            ++ledger_.done;
            break;
          case JobState::kFailed:
            ++ledger_.failed;
            break;
          case JobState::kShed:
            ++ledger_.shed;
            break;
          case JobState::kTimedOut:
            ++ledger_.timedOut;
            break;
        }
        updateHealthLocked();
        if (ledger_.queued == 0 && ledger_.inFlight == 0)
            idleCv_.notify_all();
    }
    if (job.done)
        job.done(res);
}

void
SimService::strike(std::uint64_t hash)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++deadlineStrikes_[hash];
}

bool
SimService::chaosTransient(std::uint64_t job_id, int attempt) const
{
    if (cfg_.transientFaultPerMille == 0)
        return false;
    const std::uint64_t coin =
        mix64(job_id * 0x2545f4914f6cdd1dull +
              static_cast<std::uint64_t>(attempt));
    return coin % 1000 < cfg_.transientFaultPerMille;
}

bool
SimService::backoffSleep(std::uint64_t job_id, int attempt,
                         std::chrono::steady_clock::time_point deadline)
{
    // Exponential with deterministic jitter in [delay/2, delay]: the
    // classic thundering-herd spreader, reproducible for tests.
    const int shift = std::min(attempt - 1, 20);
    const std::uint64_t full = std::min<std::uint64_t>(
        cfg_.backoffCapMs,
        static_cast<std::uint64_t>(cfg_.backoffBaseMs) << shift);
    const std::uint64_t half = full / 2;
    const std::uint64_t jitter =
        full > half
            ? mix64(job_id ^ (static_cast<std::uint64_t>(attempt) << 32))
                  % (full - half + 1)
            : 0;
    auto wake = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(half + jitter);
    if (wake > deadline)
        wake = deadline; // never sleep past the deadline
    std::unique_lock<std::mutex> lk(backoffMu_);
    backoffCv_.wait_until(lk, wake, [this] {
        return abortRequested_.load(std::memory_order_relaxed);
    });
    return !abortRequested_.load(std::memory_order_relaxed);
}

void
SimService::noteShedLocked()
{
    if (health_ == HealthState::kOk) {
        health_ = HealthState::kDegraded;
        ++ledger_.degradedTransitions;
    }
}

void
SimService::updateHealthLocked()
{
    if (health_ == HealthState::kDraining)
        return;
    const double cap = static_cast<double>(queue_.capacity());
    const double occ =
        cap > 0 ? static_cast<double>(ledger_.queued) / cap : 0.0;
    if (health_ == HealthState::kOk && occ >= cfg_.degradedHighWater) {
        health_ = HealthState::kDegraded;
        ++ledger_.degradedTransitions;
    } else if (health_ == HealthState::kDegraded &&
               occ <= cfg_.degradedLowWater) {
        health_ = HealthState::kOk;
        ++ledger_.recoveredTransitions;
    }
}

void
SimService::shutdown(bool drain)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (shutdownStarted_)
            return;
        shutdownStarted_ = true;
        health_ = HealthState::kDraining;
    }
    shutdownRequested_.store(true, std::memory_order_relaxed);
    if (!drain) {
        abortRequested_.store(true, std::memory_order_relaxed);
        backoffCv_.notify_all();
    }
    auto orphans = queue_.close(drain ? BoundedQueue<Job>::Close::kDrain
                                      : BoundedQueue<Job>::Close::kAbort);
    // Every orphan still gets its exactly-one terminal state.
    if (!orphans.empty()) {
        std::lock_guard<std::mutex> lk(mu_);
        ledger_.queued -= orphans.size();
        ledger_.shed += orphans.size();
    }
    for (Job& j : orphans) {
        JobResult res;
        res.jobId = j.jobId;
        res.state = JobState::kShed;
        res.detail = "shed by aborted shutdown";
        if (j.done)
            j.done(res);
    }
    // Lanes exit once the closed queue runs dry; kDrain joins them.
    pool_->stop(util::ThreadPool::Stop::kDrain);
    std::lock_guard<std::mutex> lk(mu_);
    idleCv_.notify_all();
}

void
SimService::quiesce()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] {
        return ledger_.queued == 0 && ledger_.inFlight == 0;
    });
}

HealthState
SimService::health() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return health_;
}

LedgerSnapshot
SimService::ledger() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return ledger_;
}

} // namespace crisp::service
