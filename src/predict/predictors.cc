/**
 * @file
 * Predictor implementations and trace evaluation.
 */

#include "predictors.hh"

#include <map>

#include "isa/types.hh"

namespace crisp
{

CounterPredictor::CounterPredictor(int bits) : bits_(bits)
{
    if (bits < 1 || bits > 3)
        throw CrispError("CounterPredictor supports 1..3 bits");
    max_ = (1 << bits) - 1;
    threshold_ = 1 << (bits - 1);
    // Weakly taken initial state; for one bit this is "taken".
    initial_ = threshold_;
}

bool
CounterPredictor::predict(const BranchEvent& ev)
{
    const auto it = table_.find(ev.pc);
    const int c = it == table_.end() ? initial_ : it->second;
    return c >= threshold_;
}

void
CounterPredictor::update(const BranchEvent& ev)
{
    auto [it, inserted] = table_.try_emplace(ev.pc, initial_);
    int& c = it->second;
    if (bits_ == 1) {
        c = ev.taken ? 1 : 0; // predict same as last time
        return;
    }
    if (ev.taken)
        c = c < max_ ? c + 1 : max_;
    else
        c = c > 0 ? c - 1 : 0;
}

std::string
CounterPredictor::name() const
{
    return std::to_string(bits_) + "-bit-dynamic";
}

TwoLevelPredictor::TwoLevelPredictor(int history_bits)
    : bits_(history_bits)
{
    if (history_bits < 1 || history_bits > 12)
        throw CrispError("TwoLevelPredictor supports 1..12 history bits");
    mask_ = (1u << history_bits) - 1u;
}

TwoLevelPredictor::SiteState&
TwoLevelPredictor::site(Addr pc)
{
    auto [it, inserted] = table_.try_emplace(pc);
    if (inserted)
        it->second.counters.assign(1u << bits_, 2); // weakly taken
    return it->second;
}

bool
TwoLevelPredictor::predict(const BranchEvent& ev)
{
    SiteState& s = site(ev.pc);
    return s.counters[s.history & mask_] >= 2;
}

void
TwoLevelPredictor::update(const BranchEvent& ev)
{
    SiteState& s = site(ev.pc);
    int& c = s.counters[s.history & mask_];
    if (ev.taken)
        c = c < 3 ? c + 1 : 3;
    else
        c = c > 0 ? c - 1 : 0;
    s.history = ((s.history << 1) | (ev.taken ? 1u : 0u)) & mask_;
}

std::string
TwoLevelPredictor::name() const
{
    return "two-level-" + std::to_string(bits_);
}

PredictionAccuracy
evaluateDirection(const std::vector<BranchEvent>& trace,
                  DirectionPredictor& p)
{
    PredictionAccuracy acc;
    for (const BranchEvent& ev : trace) {
        if (!ev.conditional)
            continue;
        ++acc.total;
        if (p.predict(ev) == ev.taken)
            ++acc.correct;
        p.update(ev);
    }
    return acc;
}

PredictionAccuracy
evaluateStaticOracle(const std::vector<BranchEvent>& trace)
{
    // Pass 1: per-site taken counts.
    std::map<Addr, std::pair<std::uint64_t, std::uint64_t>> counts;
    for (const BranchEvent& ev : trace) {
        if (!ev.conditional)
            continue;
        auto& [taken, total] = counts[ev.pc];
        taken += ev.taken ? 1 : 0;
        ++total;
    }
    // Pass 2 (closed form): the optimal static bit scores
    // max(taken, total - taken) per site.
    PredictionAccuracy acc;
    for (const auto& [pc, tt] : counts) {
        const auto [taken, total] = tt;
        acc.total += total;
        acc.correct += taken > total - taken ? taken : total - taken;
    }
    return acc;
}

PredictionAccuracy
alternatingAccuracy(DirectionPredictor& p, int flips)
{
    PredictionAccuracy acc;
    BranchEvent ev;
    ev.pc = 0x1000;
    ev.conditional = true;
    for (int i = 0; i < flips; ++i) {
        ev.taken = (i % 2) != 0; // start not-taken: counters stay wrong
        ++acc.total;
        if (p.predict(ev) == ev.taken)
            ++acc.correct;
        p.update(ev);
    }
    return acc;
}

BranchTargetBuffer::BranchTargetBuffer(int sets, int ways,
                                       bool use_counters)
    : sets_(sets), ways_(ways), useCounters_(use_counters),
      table_(static_cast<std::size_t>(sets),
             std::vector<Entry>(static_cast<std::size_t>(ways)))
{
    if (sets <= 0 || (sets & (sets - 1)) != 0 || ways <= 0)
        throw CrispError("BTB: sets must be a power of two, ways > 0");
}

BranchTargetBuffer::Entry*
BranchTargetBuffer::find(Addr pc)
{
    auto& set = table_[(pc / kParcelBytes) & (sets_ - 1)];
    for (Entry& e : set) {
        if (e.valid && e.tag == pc)
            return &e;
    }
    return nullptr;
}

BranchTargetBuffer::Entry*
BranchTargetBuffer::allocate(Addr pc)
{
    auto& set = table_[(pc / kParcelBytes) & (sets_ - 1)];
    Entry* victim = &set[0];
    for (Entry& e : set) {
        if (!e.valid)
            return &e;
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    return victim;
}

PredictionAccuracy
BranchTargetBuffer::evaluate(const std::vector<BranchEvent>& trace)
{
    PredictionAccuracy acc;
    for (const BranchEvent& ev : trace) {
        ++clock_;
        Entry* e = find(ev.pc);

        if (ev.conditional) {
            ++acc.total;
            const bool predict_taken =
                e != nullptr && (!useCounters_ || e->counter >= 2);
            const Addr predicted_target = e != nullptr ? e->target : 0;
            const bool correct =
                predict_taken
                    ? (ev.taken && predicted_target == ev.target)
                    : !ev.taken;
            if (correct)
                ++acc.correct;
        }

        // Train: entries are allocated when a branch takes.
        if (ev.taken) {
            if (e == nullptr) {
                e = allocate(ev.pc);
                e->valid = true;
                e->tag = ev.pc;
                e->counter = 2;
            } else if (useCounters_ && e->counter < 3) {
                ++e->counter;
            }
            e->target = ev.target;
            e->lastUse = clock_;
        } else if (e != nullptr) {
            if (useCounters_) {
                if (e->counter > 0)
                    --e->counter;
            } else {
                e->valid = false; // jump-trace style: evict on fall-through
            }
            e->lastUse = clock_;
        }
    }
    return acc;
}

std::string
BranchTargetBuffer::name() const
{
    return "btb-" + std::to_string(sets_) + "x" + std::to_string(ways_) +
           (useCounters_ ? "" : "-jumptrace");
}

} // namespace crisp
