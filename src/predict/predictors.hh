/**
 * @file
 * Branch prediction schemes evaluated in the paper's Table 1, plus the
 * Branch Target Buffer models of the comparison section.
 *
 * The paper's methodology: instrument long-running programs and apply
 * several prediction techniques simultaneously as the program runs. We
 * reproduce this by running workloads on the reference interpreter and
 * replaying the recorded branch trace through every scheme:
 *
 *  - static: the optimal setting of one per-site prediction bit
 *    (computed from the trace itself, as the paper's "accuracy for
 *    optimal setting of a branch prediction bit" does);
 *  - 1/2/3 bits of dynamic history with an infinite table (J. Smith's
 *    saturating-counter weighting for 2 and 3 bits), which makes the
 *    dynamic numbers "somewhat optimistic" exactly as in the paper;
 *  - a Lee-and-Smith-style set-associative BTB and an MU5-style
 *    8-entry jump trace, for the comparison discussion.
 */

#ifndef CRISP_PREDICT_PREDICTORS_HH
#define CRISP_PREDICT_PREDICTORS_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/trace.hh"

namespace crisp
{

/** Accuracy of one scheme over one trace. */
struct PredictionAccuracy
{
    std::uint64_t total = 0;
    std::uint64_t correct = 0;

    double
    rate() const
    {
        return total ? static_cast<double>(correct) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Interface for per-branch direction predictors. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch @p ev. */
    virtual bool predict(const BranchEvent& ev) = 0;

    /** Train with the actual outcome. */
    virtual void update(const BranchEvent& ev) = 0;

    virtual std::string name() const = 0;
};

/** Predict using the static bit the compiler put in the instruction. */
class CompilerBitPredictor : public DirectionPredictor
{
  public:
    bool predict(const BranchEvent& ev) override { return ev.predictTaken; }
    void update(const BranchEvent&) override {}
    std::string name() const override { return "compiler-bit"; }
};

/** J. Smith's strategy 1: predict every branch taken. */
class AlwaysTakenPredictor : public DirectionPredictor
{
  public:
    bool predict(const BranchEvent&) override { return true; }
    void update(const BranchEvent&) override {}
    std::string name() const override { return "always-taken"; }
};

/**
 * Hardware backward-taken / forward-not-taken: predict by target
 * direction alone, with no compiler bit and no history (the heuristic
 * the crispcc bit-setting pass bakes into the binary).
 */
class BtfntPredictor : public DirectionPredictor
{
  public:
    bool
    predict(const BranchEvent& ev) override
    {
        return ev.target < ev.pc;
    }
    void update(const BranchEvent&) override {}
    std::string name() const override { return "btfnt"; }
};

/**
 * N-bit dynamic history with an infinite table of saturating counters
 * (n = 1, 2 or 3). One bit degenerates to predict-same-as-last-time.
 */
class CounterPredictor : public DirectionPredictor
{
  public:
    explicit CounterPredictor(int bits);

    bool predict(const BranchEvent& ev) override;
    void update(const BranchEvent& ev) override;
    std::string name() const override;

  private:
    int bits_;
    int max_;
    int threshold_;
    int initial_;
    std::unordered_map<Addr, int> table_;
};

/**
 * Two-level adaptive predictor (Yeh & Patt, 1991 — four years after
 * the paper): per-site local history selecting a per-site table of
 * 2-bit counters, with the infinite-table idealization of Table 1.
 * Included to show what finally beat both the static bit and simple
 * counters: it learns alternating and short periodic patterns exactly,
 * the cases the paper used to justify the static bit.
 */
class TwoLevelPredictor : public DirectionPredictor
{
  public:
    explicit TwoLevelPredictor(int history_bits);

    bool predict(const BranchEvent& ev) override;
    void update(const BranchEvent& ev) override;
    std::string name() const override;

  private:
    struct SiteState
    {
        unsigned history = 0;
        std::vector<int> counters;
    };

    SiteState& site(Addr pc);

    int bits_;
    unsigned mask_;
    std::unordered_map<Addr, SiteState> table_;
};

/**
 * Evaluate a direction predictor over the conditional branches of a
 * trace.
 */
PredictionAccuracy evaluateDirection(const std::vector<BranchEvent>& trace,
                                     DirectionPredictor& p);

/**
 * Optimal static prediction: for every branch site choose the majority
 * direction observed in this very trace, then score. This is the
 * paper's "static branch prediction" column (an upper bound on what a
 * compiler-set bit can achieve).
 */
PredictionAccuracy
evaluateStaticOracle(const std::vector<BranchEvent>& trace);

/**
 * Per-scheme accuracy on a branch whose outcome strictly alternates:
 * the paper's observation is static = 50%, all dynamic schemes ~0%.
 * (Exposed as a library function so tests can pin the phenomenon.)
 */
PredictionAccuracy alternatingAccuracy(DirectionPredictor& p, int flips);

/**
 * A Branch Target Buffer in the style of Lee and Smith: set-associative,
 * LRU, allocated on taken branches, 2-bit counter per entry. Predicts
 * both direction and target; a conditional branch is counted correct
 * when (hit, predicted taken, stored target correct) or (predicted not
 * taken, not taken).
 */
class BranchTargetBuffer
{
  public:
    BranchTargetBuffer(int sets, int ways, bool use_counters = true);

    /** Run a full trace; all branches participate (unconditional
     *  branches train the target field too). */
    PredictionAccuracy evaluate(const std::vector<BranchEvent>& trace);

    std::string name() const;

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        int counter = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    int sets_;
    int ways_;
    bool useCounters_;
    std::vector<std::vector<Entry>> table_;
    std::uint64_t clock_ = 0;

    Entry* find(Addr pc);
    Entry* allocate(Addr pc);
};

} // namespace crisp

#endif // CRISP_PREDICT_PREDICTORS_HH
