/**
 * @file
 * Profile-guided prediction-bit patching.
 */

#include "profile.hh"

#include <map>

#include "interp/interpreter.hh"
#include "isa/encoding.hh"

namespace crisp
{

namespace
{

/** Set the prediction bit inside an encoded conditional branch. */
void
patchBit(Program& prog, Addr pc, bool taken)
{
    const Parcel p0 = prog.parcelAt(pc);
    const int major = p0 >> 12;
    Parcel patched = p0;
    if (major == 0xD || major == 0xE) {
        // One-parcel conditional branch: bit 11.
        patched = static_cast<Parcel>(taken ? (p0 | (1u << 11))
                                            : (p0 & ~(1u << 11)));
    } else {
        const auto op = static_cast<Opcode>(p0 >> 10);
        if (!isConditionalBranch(op))
            throw CrispError("profile: trace points at a non-branch");
        // Three-parcel conditional branch: bit 8.
        patched = static_cast<Parcel>(taken ? (p0 | (1u << 8))
                                            : (p0 & ~(1u << 8)));
    }
    prog.text[(pc - prog.textBase) / kParcelBytes] = patched;
}

} // namespace

int
applyProfileBits(Program& prog, const std::vector<BranchEvent>& trace)
{
    std::map<Addr, std::pair<std::uint64_t, std::uint64_t>> counts;
    for (const BranchEvent& ev : trace) {
        if (!ev.conditional)
            continue;
        auto& [taken, total] = counts[ev.pc];
        taken += ev.taken ? 1 : 0;
        ++total;
    }

    int flipped = 0;
    for (const auto& [pc, tt] : counts) {
        const auto [taken, total] = tt;
        if (taken * 2 == total)
            continue; // tie: keep the compiler's bit
        const bool majority = taken * 2 > total;
        const Instruction before = prog.fetch(pc);
        if (before.predictTaken != majority) {
            patchBit(prog, pc, majority);
            ++flipped;
        }
    }
    return flipped;
}

Program
profileOptimize(const Program& prog, std::uint64_t max_steps)
{
    Interpreter interp(prog);
    BranchTraceRecorder rec;
    interp.run(max_steps, &rec);
    if (!interp.halted())
        throw CrispError("profile run did not terminate");
    Program optimized = prog;
    applyProfileBits(optimized, rec.events);
    return optimized;
}

} // namespace crisp
