/**
 * @file
 * Profile-guided static prediction bits.
 *
 * The paper: "The setting of CRISP's branch prediction bit is normally
 * done by the compiler, though other techniques are possible." This is
 * the natural other technique: run the program once, record each
 * conditional branch's majority direction, and patch the bit in the
 * binary — realizing the paper's "optimal setting of a branch
 * prediction bit" column as an actual toolchain step.
 */

#ifndef CRISP_PREDICT_PROFILE_HH
#define CRISP_PREDICT_PROFILE_HH

#include <cstdint>
#include <vector>

#include "interp/trace.hh"
#include "isa/program.hh"

namespace crisp
{

/**
 * Patch the static prediction bit of every conditional branch that
 * appears in @p trace to its majority direction (ties keep the
 * existing bit). Works on both one-parcel and three-parcel encodings.
 *
 * @return the number of branch sites whose bit was flipped.
 */
int applyProfileBits(Program& prog, const std::vector<BranchEvent>& trace);

/**
 * Convenience: run @p prog once on the functional interpreter, then
 * return a copy with profile-optimal bits.
 */
Program profileOptimize(const Program& prog,
                        std::uint64_t max_steps = 500'000'000);

} // namespace crisp

#endif // CRISP_PREDICT_PROFILE_HH
