/**
 * @file
 * Execution trace records emitted by the functional interpreter.
 *
 * The branch trace is the input to the predictor-study harness
 * (Table 1): the paper instrumented a VAX C compiler to apply several
 * prediction schemes as programs ran; we run programs on the reference
 * interpreter and evaluate all schemes on the recorded trace, which is
 * methodologically equivalent.
 */

#ifndef CRISP_INTERP_TRACE_HH
#define CRISP_INTERP_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/opcode.hh"
#include "isa/types.hh"

namespace crisp
{

/** One dynamic execution of a branch instruction. */
struct BranchEvent
{
    Addr pc = 0;              //!< address of the branch instruction
    Opcode op = Opcode::kJmp;
    bool conditional = false;
    bool taken = false;
    bool predictTaken = false; //!< the static prediction bit in the code
    Addr target = 0;          //!< taken-path address
    Addr fallThrough = 0;     //!< not-taken-path address
    bool shortForm = false;   //!< encoded in the one-parcel format

    // Microarchitectural annotations, filled in only by the cycle-level
    // simulator (always false/zero from the functional interpreter).
    // The lockstep equivalence checker deliberately ignores them; the
    // static-analysis oracle (src/analysis/oracle.hh) consumes them.
    bool folded = false;          //!< issued folded into a carrier
    bool resolvedAtIssue = false; //!< outcome known at issue (cond only)
    /**
     * Cycles this execution lost to branch resolution: 0 when resolved
     * at issue or correctly predicted, 3/2/1 for a mispredict verified
     * in the branch's own RR stage / by a compare retiring while the
     * branch sat in OR / in IR (the paper's staircase), and 2 for an
     * indirect jump's retirement-read target bubbles. The cost engine
     * (src/analysis/cost.hh) bounds this statically per site.
     */
    std::uint8_t delayCycles = 0;
};

/** Observer hooks for interpreter execution. */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** Called once per architecturally executed instruction. */
    virtual void onInstruction(Addr pc, Opcode op) { (void)pc; (void)op; }

    /** Called for every executed branch (conditional or not). */
    virtual void onBranch(const BranchEvent& ev) { (void)ev; }
};

/** Observer that records the full branch trace in memory. */
class BranchTraceRecorder : public ExecObserver
{
  public:
    void onBranch(const BranchEvent& ev) override { events.push_back(ev); }

    std::vector<BranchEvent> events;
};

} // namespace crisp

#endif // CRISP_INTERP_TRACE_HH
