/**
 * @file
 * Functional interpreter implementation.
 */

#include "interpreter.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace crisp
{

Interpreter::Interpreter(const Program& prog)
    : prog_(prog), mem_(prog)
{
    pc_ = prog.entry;
    // The stack grows down from the top of memory, word aligned.
    sp_ = (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
}

Word
Interpreter::readOperand(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kImm:
        return o.value;
      case AddrMode::kAccum:
        return accum_;
      case AddrMode::kNone:
        return 0;
      default:
        return static_cast<Word>(mem_.read32(operandAddress(o)));
    }
}

Addr
Interpreter::operandAddress(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kStack:
        return sp_ + static_cast<Addr>(o.value) * kWordBytes;
      case AddrMode::kAbs:
        return static_cast<Addr>(o.value);
      case AddrMode::kInd:
        return mem_.read32(sp_ + static_cast<Addr>(o.value) * kWordBytes);
      default:
        throw CrispError("operand has no address");
    }
}

void
Interpreter::writeOperand(const Operand& o, Word v)
{
    if (o.mode == AddrMode::kAccum) {
        accum_ = v;
        return;
    }
    mem_.write32(operandAddress(o), static_cast<std::uint32_t>(v));
}

bool
Interpreter::step(ExecObserver* observer)
{
    if (halted_)
        return false;

    const Addr pc = pc_;
    const Instruction inst = prog_.fetch(pc);
    const Addr fall = pc + inst.lengthBytes();

    ++result_.instructions;
    ++result_.opcodeCounts[static_cast<std::size_t>(inst.op)];
    if (observer)
        observer->onInstruction(pc, inst.op);

    Addr next = fall;

    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        halted_ = true;
        result_.halted = true;
        return false;
      case Opcode::kEnter:
        sp_ -= static_cast<Addr>(inst.dst.value) * kWordBytes;
        break;
      case Opcode::kLeave:
        sp_ += static_cast<Addr>(inst.dst.value) * kWordBytes;
        break;
      case Opcode::kReturn: {
        sp_ += static_cast<Addr>(inst.dst.value) * kWordBytes;
        next = mem_.read32(sp_);
        sp_ += kWordBytes;
        break;
      }
      case Opcode::kMov:
        writeOperand(inst.dst, readOperand(inst.src));
        break;
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
      case Opcode::kCall: {
        Addr target = 0;
        switch (inst.bmode) {
          case BranchMode::kPcRel:
            target = pc + static_cast<Addr>(inst.disp);
            break;
          case BranchMode::kAbs:
            target = inst.spec;
            break;
          case BranchMode::kIndAbs:
            target = mem_.read32(inst.spec);
            break;
          case BranchMode::kIndSp:
            target = mem_.read32(
                sp_ + static_cast<Addr>(
                          static_cast<std::int32_t>(inst.spec)) *
                          kWordBytes);
            break;
        }

        bool taken = true;
        if (inst.op == Opcode::kIfTJmp)
            taken = flag_;
        else if (inst.op == Opcode::kIfFJmp)
            taken = !flag_;

        if (inst.op == Opcode::kCall) {
            sp_ -= kWordBytes;
            mem_.write32(sp_, fall);
        }

        if (taken)
            next = target;

        ++result_.branches;
        const bool short_form = inst.lengthParcels() == 1;
        if (short_form)
            ++result_.shortBranches;

        if (observer) {
            BranchEvent ev;
            ev.pc = pc;
            ev.op = inst.op;
            ev.conditional = isConditionalBranch(inst.op);
            ev.taken = taken;
            ev.predictTaken = inst.predictTaken;
            ev.target = target;
            ev.fallThrough = fall;
            ev.shortForm = short_form;
            observer->onBranch(ev);
        }
        break;
      }
      default:
        if (isCompare(inst.op)) {
            flag_ = evalCompare(inst.op, readOperand(inst.dst),
                                readOperand(inst.src));
        } else if (isAlu3(inst.op)) {
            accum_ = evalAlu(inst.op, readOperand(inst.dst),
                             readOperand(inst.src));
        } else if (isAlu2(inst.op)) {
            writeOperand(inst.dst,
                         evalAlu(inst.op, readOperand(inst.dst),
                                 readOperand(inst.src)));
        } else {
            throw CrispError("interpreter: unhandled opcode " +
                             std::string(opcodeName(inst.op)));
        }
        break;
    }

    pc_ = next;
    return true;
}

InterpResult
Interpreter::run(std::uint64_t max_steps, ExecObserver* observer)
{
    std::uint64_t steps = 0;
    while (!halted_ && steps < max_steps) {
        if (!step(observer))
            break;
        ++steps;
    }
    return result_;
}

Word
Interpreter::wordAt(const std::string& symbol) const
{
    const auto a = prog_.lookup(symbol);
    if (!a)
        throw CrispError("unknown symbol: " + symbol);
    return static_cast<Word>(mem_.read32(*a));
}

std::string
InterpResult::histogramTable() const
{
    // Sort opcodes by descending dynamic count, like the paper's Table 2.
    std::vector<std::pair<std::uint64_t, Opcode>> rows;
    for (int i = 0; i < kOpcodeCount; ++i) {
        if (opcodeCounts[i] > 0)
            rows.emplace_back(opcodeCounts[i], static_cast<Opcode>(i));
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.first > b.first;
    });

    std::ostringstream os;
    os << "Total of " << instructions << " instructions\n";
    os << std::left << std::setw(10) << "Opcode" << std::right
       << std::setw(10) << "Count" << std::setw(10) << "Percent" << "\n";
    for (const auto& [count, op] : rows) {
        const double pct =
            100.0 * static_cast<double>(count) /
            static_cast<double>(instructions);
        os << std::left << std::setw(10) << opcodeName(op) << std::right
           << std::setw(10) << count << std::setw(9) << std::fixed
           << std::setprecision(2) << pct << "%\n";
    }
    return os.str();
}

} // namespace crisp
