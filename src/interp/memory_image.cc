/**
 * @file
 * Program loading into a flat memory image.
 */

#include "memory_image.hh"

namespace crisp
{

void
MemoryImage::load(const Program& prog)
{
    bytes_.assign(prog.memBytes, 0);

    const Addr text_bytes =
        static_cast<Addr>(prog.text.size()) * kParcelBytes;
    if (prog.textBase + text_bytes > prog.memBytes)
        throw CrispError("text segment does not fit in memory");
    for (std::size_t i = 0; i < prog.text.size(); ++i) {
        const Parcel p = prog.text[i];
        const Addr a = prog.textBase + static_cast<Addr>(i) * kParcelBytes;
        bytes_[a] = static_cast<std::uint8_t>(p);
        bytes_[a + 1] = static_cast<std::uint8_t>(p >> 8);
    }

    if (prog.dataBase + prog.data.size() > prog.memBytes)
        throw CrispError("data segment does not fit in memory");
    for (std::size_t i = 0; i < prog.data.size(); ++i)
        bytes_[prog.dataBase + i] = prog.data[i];
}

} // namespace crisp
