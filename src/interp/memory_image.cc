/**
 * @file
 * Program loading into a flat memory image.
 */

#include "memory_image.hh"

namespace crisp
{

void
MemoryImage::copySegments(const Program& prog, Addr lo, Addr hi)
{
    const Addr text_bytes =
        static_cast<Addr>(prog.text.size()) * kParcelBytes;
    if (prog.textBase + text_bytes > prog.memBytes)
        throw CrispError("text segment does not fit in memory");
    if (prog.textBase < hi && lo < prog.textBase + text_bytes) {
        for (std::size_t i = 0; i < prog.text.size(); ++i) {
            const Parcel p = prog.text[i];
            const Addr a =
                prog.textBase + static_cast<Addr>(i) * kParcelBytes;
            bytes_[a] = static_cast<std::uint8_t>(p);
            bytes_[a + 1] = static_cast<std::uint8_t>(p >> 8);
        }
    }

    if (prog.dataBase + prog.data.size() > prog.memBytes)
        throw CrispError("data segment does not fit in memory");
    if (prog.dataBase < hi && lo < prog.dataBase + prog.data.size()) {
        for (std::size_t i = 0; i < prog.data.size(); ++i)
            bytes_[prog.dataBase + i] = prog.data[i];
    }
}

void
MemoryImage::load(const Program& prog)
{
    bytes_.assign(prog.memBytes, 0);
    // One bit per 64-byte line, rounded up to whole 64-bit words.
    dirty_.assign((bytes_.size() + (std::uint64_t{64} << kLineShift) - 1)
                      >> (kLineShift + 6),
                  0);
    journalCount_ = 0;
    journalOverflow_ = false;
    copySegments(prog);
}

void
MemoryImage::revert(const Program& prog)
{
    if (!journalOverflow_) {
        // Every store since the last load()/revert() is in the
        // journal: undoing it in LIFO order restores the pre-write
        // bytes exactly, even when entries overlap. No line memsets,
        // no segment re-copies — O(words written), the warm-replay
        // fast path. The bitmap words are cleared wholesale (a few
        // cache lines for a 256 KiB image).
        while (journalCount_ > 0) {
            const Undo& u = journal_[--journalCount_];
            std::memcpy(bytes_.data() + u.addr, &u.old, 4);
        }
        std::fill(dirty_.begin(), dirty_.end(), 0);
        return;
    }
    journalCount_ = 0;
    journalOverflow_ = false;
    // Every line whose dirty bit is clear still holds its load-time
    // value; zeroing the dirty lines and re-copying any segment they
    // may overlap reproduces load(prog) exactly.
    Addr lo = ~Addr{0};
    Addr hi = 0;
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
        std::uint64_t bits = dirty_[w];
        if (bits == 0)
            continue;
        dirty_[w] = 0;
        while (bits != 0) {
            const int b = std::countr_zero(bits);
            bits &= bits - 1;
            const Addr line =
                (static_cast<Addr>(w) * 64 + static_cast<Addr>(b))
                << kLineShift;
            const Addr n = bytes_.size() - line < (Addr{1} << kLineShift)
                               ? static_cast<Addr>(bytes_.size()) - line
                               : Addr{1} << kLineShift;
            std::memset(bytes_.data() + line, 0, n);
            if (line < lo)
                lo = line;
            if (line + n > hi)
                hi = line + n;
        }
    }
    // Re-copy only segments the zeroed range may have wiped.
    if (hi > lo)
        copySegments(prog, lo, hi);
}

} // namespace crisp
