/**
 * @file
 * Reference functional interpreter: the architectural golden model.
 *
 * Executes a Program instruction-at-a-time with no timing. Used for:
 *  - architectural cross-checking of the pipelined simulator (folding,
 *    prediction and spreading must never change results);
 *  - dynamic instruction counts (Table 2) and the "apparent instruction"
 *    denominator of Table 4;
 *  - branch traces for the prediction study (Table 1).
 */

#ifndef CRISP_INTERP_INTERPRETER_HH
#define CRISP_INTERP_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "isa/program.hh"
#include "memory_image.hh"
#include "trace.hh"

namespace crisp
{

/** Aggregate results of a functional run. */
struct InterpResult
{
    /** Total architecturally executed instructions. */
    std::uint64_t instructions = 0;
    /** Dynamic opcode histogram. */
    std::array<std::uint64_t, kOpcodeCount> opcodeCounts{};
    /** True if execution reached a halt (vs. the step limit). */
    bool halted = false;
    /** Dynamic count of branch instructions executed. */
    std::uint64_t branches = 0;
    /** Dynamic branches that used the one-parcel encoding. */
    std::uint64_t shortBranches = 0;

    std::uint64_t
    count(Opcode op) const
    {
        return opcodeCounts[static_cast<std::size_t>(op)];
    }

    /** Pretty-print the opcode histogram like the paper's Table 2. */
    std::string histogramTable() const;
};

/** Architectural machine state. */
class Interpreter
{
  public:
    explicit Interpreter(const Program& prog);

    /** Run until halt or @p max_steps instructions. */
    InterpResult run(std::uint64_t max_steps = 100'000'000,
                     ExecObserver* observer = nullptr);

    /** Execute exactly one instruction. @return false once halted. */
    bool step(ExecObserver* observer = nullptr);

    // Architectural state access (for tests and cross-checks) ---------
    Addr pc() const { return pc_; }
    Addr sp() const { return sp_; }
    Word accum() const { return accum_; }
    bool flag() const { return flag_; }
    bool halted() const { return halted_; }
    const MemoryImage& memory() const { return mem_; }
    MemoryImage& memory() { return mem_; }

    /** Read the 32-bit word at a global symbol (test convenience). */
    Word wordAt(const std::string& symbol) const;

    const InterpResult& result() const { return result_; }

  private:
    Word readOperand(const Operand& o) const;
    void writeOperand(const Operand& o, Word v);
    Addr operandAddress(const Operand& o) const;

    /** Owned copy: the interpreter's lifetime is self-contained. */
    Program prog_;
    MemoryImage mem_;
    Addr pc_ = 0;
    Addr sp_ = 0;
    Word accum_ = 0;
    bool flag_ = false;
    bool halted_ = false;
    InterpResult result_;
};

} // namespace crisp

#endif // CRISP_INTERP_INTERPRETER_HH
