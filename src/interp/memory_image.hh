/**
 * @file
 * Flat byte-addressable memory image shared by the functional
 * interpreter and the cycle-level simulator.
 */

#ifndef CRISP_INTERP_MEMORY_IMAGE_HH
#define CRISP_INTERP_MEMORY_IMAGE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "isa/program.hh"
#include "isa/types.hh"

namespace crisp
{

/**
 * Little-endian flat memory. Text and data segments are copied in from
 * a Program; the stack occupies the top of the image.
 */
class MemoryImage
{
  public:
    MemoryImage() = default;

    /** Construct an image sized and initialized from @p prog. */
    explicit MemoryImage(const Program& prog) { load(prog); }

    /** (Re)initialize from a program. */
    void load(const Program& prog);

    /**
     * Restore the image to the state load(@p prog) would produce,
     * where @p prog is the program already loaded: zero the window of
     * addresses written since, then re-copy the text and data
     * segments. O(bytes actually written) instead of O(memBytes) —
     * the difference between reusing a machine for a replay and
     * re-zeroing a 256 KiB image per run.
     */
    void revert(const Program& prog);

    Addr size() const { return static_cast<Addr>(bytes_.size()); }

    std::uint8_t
    read8(Addr a) const
    {
        check(a, 1);
        return bytes_[a];
    }

    // Loads/stores memcpy the value on little-endian hosts (a single
    // unaligned machine load after optimization — these sit on the
    // simulator's hot path) and fall back to byte shifts elsewhere.

    std::uint16_t
    read16(Addr a) const
    {
        check(a, 2);
        if constexpr (std::endian::native == std::endian::little) {
            std::uint16_t v;
            std::memcpy(&v, bytes_.data() + a, 2);
            return v;
        }
        return static_cast<std::uint16_t>(bytes_[a]) |
               (static_cast<std::uint16_t>(bytes_[a + 1]) << 8);
    }

    std::uint32_t
    read32(Addr a) const
    {
        check(a, 4);
        if constexpr (std::endian::native == std::endian::little) {
            std::uint32_t v;
            std::memcpy(&v, bytes_.data() + a, 4);
            return v;
        }
        return static_cast<std::uint32_t>(bytes_[a]) |
               (static_cast<std::uint32_t>(bytes_[a + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes_[a + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes_[a + 3]) << 24);
    }

    void
    write32(Addr a, std::uint32_t v)
    {
        check(a, 4);
        if (!journalOverflow_) [[likely]] {
            if (journalCount_ < kJournalCap) {
                Undo& u = journal_[journalCount_++];
                u.addr = a;
                std::memcpy(&u.old, bytes_.data() + a, 4);
            } else {
                journalOverflow_ = true;
            }
        }
        markDirty(a);
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(bytes_.data() + a, &v, 4);
            return;
        }
        bytes_[a] = static_cast<std::uint8_t>(v);
        bytes_[a + 1] = static_cast<std::uint8_t>(v >> 8);
        bytes_[a + 2] = static_cast<std::uint8_t>(v >> 16);
        bytes_[a + 3] = static_cast<std::uint8_t>(v >> 24);
    }

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    /**
     * True when any 64-byte dirty line written since the last load() /
     * revert() overlaps [@p lo, @p hi). The fast engine queries the
     * text window *before* reverting: a store into text means its
     * translation describes stale bytes and must be rebuilt after the
     * revert restores the original image.
     */
    bool
    dirtyInRange(Addr lo, Addr hi) const
    {
        if (lo >= hi || bytes_.empty())
            return false;
        const Addr last = std::min<Addr>(hi - 1, size() - 1);
        for (Addr line = lo >> kLineShift; line <= (last >> kLineShift);
             ++line) {
            if (dirty_[line >> 6] & (std::uint64_t{1} << (line & 63)))
                return true;
        }
        return false;
    }

    /**
     * Word-granularity write journal capacity. Runs that store at most
     * this many words (the typical torture replay: a few stack frames)
     * revert by LIFO undo of the journal — no line memsets, no segment
     * re-copies. Longer runs overflow the journal once and fall back
     * to the dirty-line bitmap path; the bitmap is maintained either
     * way, so dirtyInRange() never depends on which path revert takes.
     */
    static constexpr std::uint32_t kJournalCap = 128;

    /** True when the journal has overflowed since the last load() /
     *  revert() — the next revert will take the bitmap path. Exposed
     *  for the journal-equivalence tests. */
    bool journalOverflowed() const { return journalOverflow_; }

    /** Journalled (not yet reverted) word writes; 0 after revert. */
    std::uint32_t journalDepth() const { return journalCount_; }

  private:
    /** Copy into the image whichever of @p prog's text and data
     *  segments overlap [@p lo, @p hi) — the address window a revert
     *  zeroed (the default covers everything, i.e. a full load). */
    void copySegments(const Program& prog, Addr lo = 0,
                      Addr hi = ~Addr{0});

    /** Dirty granule: 64-byte lines, one bit each in dirty_. */
    static constexpr int kLineShift = 6;

    /** Mark the line(s) covered by a 4-byte store at @p a. */
    void
    markDirty(Addr a)
    {
        dirty_[a >> (kLineShift + 6)] |=
            std::uint64_t{1} << ((a >> kLineShift) & 63);
        const Addr b = a + 3;
        dirty_[b >> (kLineShift + 6)] |=
            std::uint64_t{1} << ((b >> kLineShift) & 63);
    }

    void
    check(Addr a, Addr n) const
    {
        if (a + n > bytes_.size() || a + n < a)
            throw CrispError("memory access out of range: 0x" +
                             std::to_string(a));
    }

    std::vector<std::uint8_t> bytes_;

    /** One bit per 64-byte line written since the last load() /
     *  revert(): exactly what a revert has to undo. A run touches a
     *  few dozen lines (its stack frames and globals), so reverting is
     *  orders of magnitude cheaper than re-zeroing the whole image. */
    std::vector<std::uint64_t> dirty_;

    /** One journalled store: the address and the 4 bytes it clobbered
     *  (captured/restored by memcpy, so endianness never matters). */
    struct Undo
    {
        Addr addr;
        std::uint32_t old;
    };

    std::array<Undo, kJournalCap> journal_;
    std::uint32_t journalCount_ = 0;
    bool journalOverflow_ = false;
};

} // namespace crisp

#endif // CRISP_INTERP_MEMORY_IMAGE_HH
