/**
 * @file
 * Flat byte-addressable memory image shared by the functional
 * interpreter and the cycle-level simulator.
 */

#ifndef CRISP_INTERP_MEMORY_IMAGE_HH
#define CRISP_INTERP_MEMORY_IMAGE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "isa/types.hh"

namespace crisp
{

/**
 * Little-endian flat memory. Text and data segments are copied in from
 * a Program; the stack occupies the top of the image.
 */
class MemoryImage
{
  public:
    MemoryImage() = default;

    /** Construct an image sized and initialized from @p prog. */
    explicit MemoryImage(const Program& prog) { load(prog); }

    /** (Re)initialize from a program. */
    void load(const Program& prog);

    Addr size() const { return static_cast<Addr>(bytes_.size()); }

    std::uint8_t
    read8(Addr a) const
    {
        check(a, 1);
        return bytes_[a];
    }

    std::uint16_t
    read16(Addr a) const
    {
        check(a, 2);
        return static_cast<std::uint16_t>(bytes_[a]) |
               (static_cast<std::uint16_t>(bytes_[a + 1]) << 8);
    }

    std::uint32_t
    read32(Addr a) const
    {
        check(a, 4);
        return static_cast<std::uint32_t>(bytes_[a]) |
               (static_cast<std::uint32_t>(bytes_[a + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes_[a + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes_[a + 3]) << 24);
    }

    void
    write32(Addr a, std::uint32_t v)
    {
        check(a, 4);
        bytes_[a] = static_cast<std::uint8_t>(v);
        bytes_[a + 1] = static_cast<std::uint8_t>(v >> 8);
        bytes_[a + 2] = static_cast<std::uint8_t>(v >> 16);
        bytes_[a + 3] = static_cast<std::uint8_t>(v >> 24);
    }

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    void
    check(Addr a, Addr n) const
    {
        if (a + n > bytes_.size() || a + n < a)
            throw CrispError("memory access out of range: 0x" +
                             std::to_string(a));
    }

    std::vector<std::uint8_t> bytes_;
};

} // namespace crisp

#endif // CRISP_INTERP_MEMORY_IMAGE_HH
