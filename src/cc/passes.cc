/**
 * @file
 * crispcc optimization passes: prediction bits, Branch Spreading,
 * peephole cleanups.
 */

#include <map>
#include <optional>

#include "code.hh"
#include "compiler.hh"
#include "isa/types.hh"

namespace crisp::cc
{

namespace
{

std::map<std::string, std::size_t>
labelIndex(const CodeList& code)
{
    std::map<std::string, std::size_t> idx;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i].kind == CodeItem::Kind::kLabel)
            idx[code[i].name] = i;
    }
    return idx;
}

std::map<std::string, int>
labelRefCounts(const CodeList& code)
{
    std::map<std::string, int> refs;
    for (const CodeItem& c : code) {
        if (c.kind == CodeItem::Kind::kBranch)
            ++refs[c.name];
    }
    return refs;
}

/** Is item @p c a plain instruction movable by code motion? */
bool
movable(const CodeItem& c)
{
    if (c.kind != CodeItem::Kind::kInst)
        return false;
    const Effects e = effectsOf(c.inst);
    return !e.barrier && !e.writesFlag;
}

} // namespace

void
passPredictBits(CodeList& code, PredictMode mode)
{
    if (mode == PredictMode::kAllNotTaken) {
        for (CodeItem& c : code) {
            if (c.isCondBranch())
                c.inst.predictTaken = false;
        }
        return;
    }
    // Backward taken, forward not taken.
    const auto labels = labelIndex(code);
    for (std::size_t i = 0; i < code.size(); ++i) {
        CodeItem& c = code[i];
        if (!c.isCondBranch())
            continue;
        const auto it = labels.find(c.name);
        if (it == labels.end())
            throw CrispError("passPredictBits: undefined label " +
                             c.name);
        c.inst.predictTaken = it->second < i;
    }
}

int
passPeephole(CodeList& code, const std::set<std::string>& keep_labels)
{
    int removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        const auto refs = labelRefCounts(code);
        for (std::size_t i = 0; i < code.size(); ++i) {
            const CodeItem& c = code[i];
            // Unreferenced generated label.
            if (c.kind == CodeItem::Kind::kLabel &&
                refs.find(c.name) == refs.end() &&
                !keep_labels.count(c.name)) {
                code.erase(code.begin() + static_cast<std::ptrdiff_t>(i));
                ++removed;
                changed = true;
                break;
            }
            // jmp L where L is the next reachable label.
            if (c.kind == CodeItem::Kind::kBranch &&
                c.inst.op == Opcode::kJmp) {
                std::size_t j = i + 1;
                bool next = false;
                while (j < code.size() &&
                       code[j].kind == CodeItem::Kind::kLabel) {
                    if (code[j].name == c.name) {
                        next = true;
                        break;
                    }
                    ++j;
                }
                if (next) {
                    code.erase(code.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    ++removed;
                    changed = true;
                    break;
                }
            }
            // mov x, x
            if (c.kind == CodeItem::Kind::kInst &&
                c.inst.op == Opcode::kMov && c.inst.dst == c.inst.src) {
                code.erase(code.begin() +
                           static_cast<std::ptrdiff_t>(i));
                ++removed;
                changed = true;
                break;
            }
        }
    }
    return removed;
}

namespace
{

/**
 * State for spreading one compare/branch pair. The pair is
 * code[cmp_idx] (a compare) immediately followed by instructions and
 * then code[br_idx] (the conditional branch).
 */
struct SpreadSite
{
    std::size_t cmpIdx;
    std::size_t brIdx;
};

/** Count instructions strictly between two indices. */
int
separation(const CodeList& code, std::size_t cmp_idx, std::size_t br_idx)
{
    int n = 0;
    for (std::size_t i = cmp_idx + 1; i < br_idx; ++i) {
        if (code[i].kind == CodeItem::Kind::kInst)
            ++n;
    }
    return n;
}

/**
 * Sink independent instructions from before the compare to between the
 * compare and the branch. A candidate that conflicts with the compare
 * (e.g. the `and3` feeding `cmp.= Accum,0`) stays put and joins the
 * barrier set; earlier candidates may still sink past it when they are
 * independent of everything they cross. Returns the number moved.
 */
int
sinkBefore(CodeList& code, std::size_t& cmp_idx, int need)
{
    if (need <= 0 || cmp_idx == 0)
        return 0;

    // Everything a sinking instruction must cross: the compare plus any
    // candidates that stayed behind.
    std::vector<Effects> barrier{effectsOf(code[cmp_idx].inst)};

    int moved = 0;
    std::size_t cand = cmp_idx;
    while (moved < need && cand > 0) {
        --cand;
        // A compare whose flag result liveness proved dead is no block
        // boundary: nothing reads the flag between it and the live
        // compare, so candidates above it may still sink past both.
        // It joins the barrier set for its data effects.
        if (code[cand].kind == CodeItem::Kind::kInst &&
            code[cand].ccDead && isCompare(code[cand].inst.op)) {
            barrier.push_back(effectsOf(code[cand].inst));
            continue;
        }
        if (!movable(code[cand]))
            break; // label / branch / compare: block boundary
        const Effects fx = effectsOf(code[cand].inst);
        bool ok = true;
        for (const Effects& b : barrier) {
            if (conflicts(fx, b)) {
                ok = false;
                break;
            }
        }
        if (!ok) {
            barrier.push_back(fx);
            continue;
        }
        // Move the candidate to immediately after the compare. Earlier
        // candidates land before previously sunk ones, preserving their
        // original relative order.
        const CodeItem item = code[cand];
        code.erase(code.begin() + static_cast<std::ptrdiff_t>(cand));
        code.insert(code.begin() + static_cast<std::ptrdiff_t>(cmp_idx),
                    item);
        --cmp_idx;
        ++moved;
    }
    return moved;
}

/**
 * Hoist instructions from the join block of an if/else diamond (or an
 * if-only triangle) to between the compare and the branch. The hoisted
 * instructions executed on both paths, so executing them before the
 * branch preserves semantics when they are independent of both arms.
 * Returns the number hoisted.
 */
int
hoistJoin(CodeList& code, std::size_t br_idx, int need)
{
    if (need <= 0)
        return 0;

    const auto refs = labelRefCounts(code);
    const std::string& else_label = code[br_idx].name;
    if (refs.at(else_label) != 1)
        return 0;

    // Scan the then-arm.
    std::vector<Effects> arm_fx;
    std::size_t i = br_idx + 1;
    bool diamond = false;
    std::string join_label;
    while (i < code.size()) {
        const CodeItem& c = code[i];
        if (c.kind == CodeItem::Kind::kLabel) {
            if (c.name != else_label)
                return 0; // another entry point: give up
            break;        // triangle: join == else label
        }
        if (c.kind == CodeItem::Kind::kBranch) {
            if (c.inst.op != Opcode::kJmp)
                return 0;
            diamond = true;
            join_label = c.name;
            ++i;
            break;
        }
        arm_fx.push_back(effectsOf(c.inst));
        ++i;
    }
    if (i >= code.size())
        return 0;

    std::size_t join_idx;
    if (!diamond) {
        join_idx = i; // at the else/join label
    } else {
        // Expect: else label here, else-arm, join label.
        if (code[i].kind != CodeItem::Kind::kLabel ||
            code[i].name != else_label) {
            return 0;
        }
        const auto jr = refs.find(join_label);
        if (jr == refs.end() || jr->second != 1)
            return 0;
        ++i;
        while (i < code.size()) {
            const CodeItem& c = code[i];
            if (c.kind == CodeItem::Kind::kLabel) {
                if (c.name != join_label)
                    return 0;
                break;
            }
            if (c.kind == CodeItem::Kind::kBranch)
                return 0;
            arm_fx.push_back(effectsOf(c.inst));
            ++i;
        }
        if (i >= code.size())
            return 0;
        join_idx = i;
    }

    // Hoist a prefix of the join block.
    int hoisted = 0;
    std::size_t src = join_idx + 1;
    std::size_t insert_at = br_idx;
    while (hoisted < need && src < code.size()) {
        const CodeItem& c = code[src];
        if (!movable(c))
            break;
        const Effects fx = effectsOf(c.inst);
        bool ok = true;
        for (const Effects& a : arm_fx) {
            if (conflicts(fx, a)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            break;
        CodeItem item = code[src];
        code.erase(code.begin() + static_cast<std::ptrdiff_t>(src));
        code.insert(code.begin() + static_cast<std::ptrdiff_t>(insert_at),
                    item);
        ++insert_at; // keep hoisted instructions in original order
        ++src;       // net: erase before insert point shifts indices +1
        ++hoisted;
    }
    return hoisted;
}

} // namespace

namespace
{

/**
 * Try to fill the slot of the predicted-taken conditional branch at
 * @p j from the first instruction of its target (annul-if-not-taken).
 * The branch is retargeted past the copied instruction.
 * @return true if the slot was placed.
 */
bool
fillFromTarget(CodeList& code, std::size_t j)
{
    const std::string& target = code[j].name;
    // Locate the target label and its first instruction.
    std::size_t li = code.size();
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i].kind == CodeItem::Kind::kLabel &&
            code[i].name == target) {
            li = i;
            break;
        }
    }
    if (li == code.size())
        return false;
    std::size_t fi = li + 1;
    while (fi < code.size() && code[fi].kind == CodeItem::Kind::kLabel)
        ++fi;
    if (fi >= code.size() || code[fi].kind != CodeItem::Kind::kInst)
        return false;
    const Instruction& first = code[fi].inst;
    if (isBranch(first.op) || first.op == Opcode::kReturn ||
        first.op == Opcode::kHalt || first.op == Opcode::kEnter ||
        first.op == Opcode::kLeave || first.op == Opcode::kNop) {
        return false;
    }

    // Retarget the branch past the copied instruction, via a fresh
    // label (other branches to `target` are unaffected).
    const std::string after = target + "_annul";
    bool have_label = false;
    for (const CodeItem& c : code) {
        if (c.kind == CodeItem::Kind::kLabel && c.name == after) {
            have_label = true;
            break;
        }
    }
    const CodeItem slot = CodeItem::instr(first);
    code[j].name = after;
    if (!have_label) {
        code.insert(code.begin() + static_cast<std::ptrdiff_t>(fi + 1),
                    CodeItem::label(after));
    }
    // Recompute j's position if the insertion shifted it.
    std::size_t bj = j + (!have_label && fi < j ? 1 : 0);
    code.insert(code.begin() + static_cast<std::ptrdiff_t>(bj + 1),
                slot);
    return true;
}

} // namespace

int
passFillDelaySlots(CodeList& code, bool annul)
{
    int filled = 0;
    for (std::size_t j = 0; j < code.size(); ++j) {
        const CodeItem& b = code[j];
        // Instruction-form branches (compiler-generated indirect jumps)
        // get an unfilled slot: a mover could alias the table read.
        if (b.kind == CodeItem::Kind::kInst && isBranch(b.inst.op) &&
            b.inst.op != Opcode::kCall) {
            code.insert(code.begin() + static_cast<std::ptrdiff_t>(j + 1),
                        CodeItem::instr(Instruction::nop()));
            ++j;
            continue;
        }
        if (b.kind != CodeItem::Kind::kBranch ||
            b.inst.op == Opcode::kCall) {
            continue;
        }

        // Annulling mode: predicted-taken conditional branches take
        // their target's first instruction; the bit marks the slot as
        // annul-if-not-taken. If the target cannot supply one, clear
        // the bit and fall through to the always-execute fill below.
        if (annul && isConditionalBranch(b.inst.op)) {
            if (code[j].inst.predictTaken) {
                if (fillFromTarget(code, j)) {
                    ++filled;
                    ++j; // skip the new slot
                    continue;
                }
                code[j].inst.predictTaken = false;
            }
        }

        // Find the nearest earlier instruction that may move past the
        // branch (and past anything between) into the delay slot.
        // Compares join the barrier set instead of ending the scan so
        // `add i,1; cmp; iftjmp` can still be filled from above.
        std::vector<Effects> barrier;
        bool moved = false;
        std::size_t cand = j;
        while (cand > 0) {
            --cand;
            const CodeItem& c = code[cand];
            // Never steal the delay slot of an earlier branch (slots
            // were placed at branch+1 as this pass walked forward).
            if (cand > 0 &&
                code[cand - 1].kind == CodeItem::Kind::kBranch &&
                code[cand - 1].inst.op != Opcode::kCall) {
                break;
            }
            if (c.kind == CodeItem::Kind::kInst &&
                isCompare(c.inst.op)) {
                barrier.push_back(effectsOf(c.inst));
                continue;
            }
            if (!movable(c))
                break;
            const Effects fx = effectsOf(c.inst);
            bool ok = true;
            for (const Effects& bf : barrier) {
                if (conflicts(fx, bf)) {
                    ok = false;
                    break;
                }
            }
            if (!ok) {
                barrier.push_back(fx);
                continue;
            }
            const CodeItem item = c;
            code.erase(code.begin() + static_cast<std::ptrdiff_t>(cand));
            // The branch shifted down by one; insert right after it.
            code.insert(code.begin() + static_cast<std::ptrdiff_t>(j),
                        item);
            moved = true;
            ++filled;
            break;
        }
        if (!moved) {
            code.insert(code.begin() + static_cast<std::ptrdiff_t>(j + 1),
                        CodeItem::instr(Instruction::nop()));
            ++j; // skip the nop slot
        }
        // When an instruction moved in from above, the branch shifted
        // to j-1 and its slot sits at j: the loop's own increment
        // already lands past it.
    }
    return filled;
}

int
passSpread(CodeList& code, int distance)
{
    int fully_spread = 0;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (!code[i + 1].isCondBranch())
            continue;
        if (code[i].kind != CodeItem::Kind::kInst ||
            !isCompare(code[i].inst.op)) {
            continue;
        }
        std::size_t cmp_idx = i;
        std::size_t br_idx = i + 1;

        int sep = separation(code, cmp_idx, br_idx);
        sep += sinkBefore(code, cmp_idx, distance - sep);
        if (sep < distance) {
            const int hoisted = hoistJoin(code, br_idx, distance - sep);
            sep += hoisted;
            // Hoisting inserted items between cmp and branch.
            br_idx += static_cast<std::size_t>(hoisted);
        }
        code[br_idx].spreadSep = sep;
        if (sep >= distance) {
            ++fully_spread;
            code[br_idx].spreadClaim = true;
        }
    }
    return fully_spread;
}

int
passRespread(CodeList& code, int distance)
{
    for (std::size_t br = 0; br < code.size(); ++br) {
        if (!code[br].isCondBranch())
            continue;

        // Find the governing compare: the nearest compare above with
        // only plain instructions between (a label or control transfer
        // means another path enters and the window is not ours).
        std::size_t cmp_idx = br;
        bool found = false;
        while (cmp_idx > 0) {
            --cmp_idx;
            const CodeItem& c = code[cmp_idx];
            if (c.kind != CodeItem::Kind::kInst ||
                isBranch(c.inst.op)) {
                break;
            }
            if (isCompare(c.inst.op)) {
                // A stale ccDead mark on the compare the branch
                // actually reads means the dataflow facts moved under
                // us: leave this site alone.
                found = !c.ccDead;
                break;
            }
        }
        std::size_t b = br;
        if (found) {
            int sep = separation(code, cmp_idx, b);
            sep += sinkBefore(code, cmp_idx, distance - sep);
            if (sep < distance) {
                const int hoisted = hoistJoin(code, b, distance - sep);
                sep += hoisted;
                b += static_cast<std::size_t>(hoisted);
            }
            code[b].spreadSep = sep;
            code[b].spreadClaim = sep >= distance;
            br = b;
        }
    }
    int fully = 0;
    for (const CodeItem& c : code) {
        if (c.isCondBranch() && c.spreadClaim)
            ++fully;
    }
    return fully;
}

namespace
{

/** Positions of non-label items, by ordinal (the --verify pairing). */
std::vector<std::size_t>
nonLabelPositions(const CodeList& code)
{
    std::vector<std::size_t> pos;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i].kind != CodeItem::Kind::kLabel)
            pos.push_back(i);
    }
    return pos;
}

/**
 * Is the instruction at @p p inside a compare -> conditional-branch
 * spread window (only kInst items between a compare above and a
 * conditional branch below)? Deleting it would shrink the separation
 * passSpread earned for that branch.
 */
bool
inSpreadWindow(const CodeList& code, std::size_t p)
{
    bool branch_below = false;
    for (std::size_t q = p + 1; q < code.size(); ++q) {
        const CodeItem& c = code[q];
        if (c.kind == CodeItem::Kind::kLabel)
            return false;
        if (c.kind == CodeItem::Kind::kBranch) {
            branch_below = c.isCondBranch();
            break;
        }
        if (isBranch(c.inst.op))
            return false; // instruction-form indirect jump
        if (isCompare(c.inst.op))
            return false; // the nearer compare owns the window
    }
    if (!branch_below)
        return false;
    for (std::size_t q = p; q > 0;) {
        --q;
        const CodeItem& c = code[q];
        if (c.kind != CodeItem::Kind::kInst || isBranch(c.inst.op))
            return false;
        if (isCompare(c.inst.op))
            return true;
    }
    return false;
}

} // namespace

int
passConstFold(CodeList& code,
              const std::map<std::size_t, bool>& directions)
{
    const std::vector<std::size_t> pos = nonLabelPositions(code);
    int changed = 0;
    // Descending ordinal order keeps later positions valid across
    // erasures.
    for (auto it = directions.rbegin(); it != directions.rend(); ++it) {
        const auto [ordinal, always_taken] = *it;
        if (ordinal >= pos.size())
            continue;
        CodeItem& c = code[pos[ordinal]];
        if (!c.isCondBranch())
            continue;
        if (always_taken) {
            c.inst.op = Opcode::kJmp;
            c.inst.predictTaken = false;
            c.spreadClaim = false;
            c.spreadSep = 0;
        } else {
            code.erase(code.begin() +
                       static_cast<std::ptrdiff_t>(pos[ordinal]));
        }
        ++changed;
    }
    return changed;
}

int
passDCE(CodeList& code, const DcePlan& plan)
{
    const std::vector<std::size_t> pos = nonLabelPositions(code);

    for (const std::size_t o : plan.ccDead) {
        if (o >= pos.size())
            continue;
        CodeItem& c = code[pos[o]];
        if (c.kind == CodeItem::Kind::kInst && isCompare(c.inst.op))
            c.ccDead = true;
    }

    // Deletions, in descending position order.
    std::set<std::size_t> doomed;
    for (const std::size_t o : plan.unreachable) {
        if (o < pos.size())
            doomed.insert(pos[o]);
    }
    for (const std::size_t o : plan.dead) {
        if (o >= pos.size())
            continue;
        const std::size_t p = pos[o];
        const CodeItem& c = code[p];
        if (c.kind != CodeItem::Kind::kInst || isCompare(c.inst.op))
            continue;
        if (inSpreadWindow(code, p))
            continue;
        doomed.insert(p);
    }
    int deleted = 0;
    for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
        code.erase(code.begin() + static_cast<std::ptrdiff_t>(*it));
        ++deleted;
    }
    return deleted;
}

int
passDevirt(CodeList& code, const std::vector<DevirtSite>& sites)
{
    const std::vector<std::size_t> pos = nonLabelPositions(code);
    int rewritten = 0;
    for (const DevirtSite& s : sites) {
        if (s.ordinal >= pos.size())
            continue;
        CodeItem& c = code[pos[s.ordinal]];
        if (c.kind != CodeItem::Kind::kInst ||
            c.inst.op != Opcode::kJmp ||
            (c.inst.bmode != BranchMode::kIndAbs &&
             c.inst.bmode != BranchMode::kIndSp)) {
            continue; // plan drifted: leave the item alone
        }
        // In-place 1:1 swap keeps the non-label ordinal pairing (and
        // with it every TV site identity) intact.
        c = CodeItem::branch(Opcode::kJmp, s.target);
        ++rewritten;
    }
    return rewritten;
}

int
passCopyProp(CodeList& code, const std::vector<ConstOperand>& uses)
{
    const std::vector<std::size_t> pos = nonLabelPositions(code);
    int rewritten = 0;
    for (const ConstOperand& u : uses) {
        if (u.ordinal >= pos.size())
            continue;
        const std::size_t p = pos[u.ordinal];
        CodeItem& c = code[p];
        if (c.kind != CodeItem::Kind::kInst || isBranch(c.inst.op))
            continue;
        Instruction next = c.inst;
        (u.dstOperand ? next.dst : next.src) = Operand::imm(u.value);
        if (next == c.inst)
            continue;
        if (next.lengthParcels() > c.inst.lengthParcels()) {
            // Growing a fold carrier past 3 parcels would cost the
            // following conditional branch its carrier; growing inside
            // a spread window eats no slots but fattens the window for
            // nothing. Skip both.
            std::size_t q = p + 1;
            while (q < code.size() &&
                   code[q].kind == CodeItem::Kind::kLabel) {
                ++q;
            }
            if (q < code.size() && code[q].isCondBranch() &&
                next.lengthParcels() > 3) {
                continue;
            }
        }
        c.inst = next;
        ++rewritten;
    }
    return rewritten;
}

} // namespace crisp::cc
