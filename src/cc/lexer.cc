/**
 * @file
 * CRISP-C lexer implementation.
 */

#include "lexer.hh"

#include <cctype>
#include <unordered_map>

#include "isa/types.hh"

namespace crisp::cc
{

namespace
{

const std::unordered_map<std::string, Tok> kKeywords = {
    {"int", Tok::kInt},         {"void", Tok::kVoid},
    {"if", Tok::kIf},           {"else", Tok::kElse},
    {"while", Tok::kWhile},     {"for", Tok::kFor},
    {"do", Tok::kDo},           {"return", Tok::kReturn},
    {"break", Tok::kBreak},     {"continue", Tok::kContinue},
    {"switch", Tok::kSwitch},   {"case", Tok::kCase},
    {"default", Tok::kDefault},
};

[[noreturn]] void
lexError(int line, const std::string& msg)
{
    throw CrispError("crispcc line " + std::to_string(line) + ": " + msg);
}

} // namespace

std::vector<Token>
lex(const std::string& src)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;

    auto push = [&](Tok k, std::string text) {
        Token t;
        t.kind = k;
        t.text = std::move(text);
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments: // and /* */
        if (c == '/' && i + 1 < src.size()) {
            if (src[i + 1] == '/') {
                while (i < src.size() && src[i] != '\n')
                    ++i;
                continue;
            }
            if (src[i + 1] == '*') {
                i += 2;
                while (i + 1 < src.size() &&
                       !(src[i] == '*' && src[i + 1] == '/')) {
                    if (src[i] == '\n')
                        ++line;
                    ++i;
                }
                if (i + 1 >= src.size())
                    lexError(line, "unterminated comment");
                i += 2;
                continue;
            }
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_')) {
                ++j;
            }
            std::string word = src.substr(i, j - i);
            const auto it = kKeywords.find(word);
            push(it == kKeywords.end() ? Tok::kIdent : it->second,
                 std::move(word));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            int base = 10;
            if (c == '0' && j + 1 < src.size() &&
                (src[j + 1] == 'x' || src[j + 1] == 'X')) {
                base = 16;
                j += 2;
            }
            std::size_t start = j;
            while (j < src.size() &&
                   std::isxdigit(static_cast<unsigned char>(src[j]))) {
                ++j;
            }
            if (base == 16 && j == start)
                lexError(line, "bad hex literal");
            if (base == 10)
                start = i;
            Token t;
            t.kind = Tok::kNumber;
            t.text = src.substr(i, j - i);
            t.value = static_cast<std::int32_t>(
                std::stoll(src.substr(start, j - start), nullptr, base));
            t.line = line;
            out.push_back(std::move(t));
            i = j;
            continue;
        }

        auto two = [&](char a, char b) {
            return c == a && i + 1 < src.size() && src[i + 1] == b;
        };
        auto three = [&](char a, char b, char d) {
            return two(a, b) && i + 2 < src.size() && src[i + 2] == d;
        };

        if (three('<', '<', '=')) { push(Tok::kShlAssign, "<<="); i += 3; continue; }
        if (three('>', '>', '=')) { push(Tok::kShrAssign, ">>="); i += 3; continue; }
        if (two('+', '=')) { push(Tok::kPlusAssign, "+="); i += 2; continue; }
        if (two('-', '=')) { push(Tok::kMinusAssign, "-="); i += 2; continue; }
        if (two('*', '=')) { push(Tok::kStarAssign, "*="); i += 2; continue; }
        if (two('/', '=')) { push(Tok::kSlashAssign, "/="); i += 2; continue; }
        if (two('%', '=')) { push(Tok::kPercentAssign, "%="); i += 2; continue; }
        if (two('&', '=')) { push(Tok::kAmpAssign, "&="); i += 2; continue; }
        if (two('|', '=')) { push(Tok::kPipeAssign, "|="); i += 2; continue; }
        if (two('^', '=')) { push(Tok::kCaretAssign, "^="); i += 2; continue; }
        if (two('+', '+')) { push(Tok::kPlusPlus, "++"); i += 2; continue; }
        if (two('-', '-')) { push(Tok::kMinusMinus, "--"); i += 2; continue; }
        if (two('&', '&')) { push(Tok::kAmpAmp, "&&"); i += 2; continue; }
        if (two('|', '|')) { push(Tok::kPipePipe, "||"); i += 2; continue; }
        if (two('=', '=')) { push(Tok::kEq, "=="); i += 2; continue; }
        if (two('!', '=')) { push(Tok::kNe, "!="); i += 2; continue; }
        if (two('<', '=')) { push(Tok::kLe, "<="); i += 2; continue; }
        if (two('>', '=')) { push(Tok::kGe, ">="); i += 2; continue; }
        if (two('<', '<')) { push(Tok::kShl, "<<"); i += 2; continue; }
        if (two('>', '>')) { push(Tok::kShr, ">>"); i += 2; continue; }

        switch (c) {
          case '(': push(Tok::kLParen, "("); break;
          case ')': push(Tok::kRParen, ")"); break;
          case '{': push(Tok::kLBrace, "{"); break;
          case '}': push(Tok::kRBrace, "}"); break;
          case '[': push(Tok::kLBracket, "["); break;
          case ']': push(Tok::kRBracket, "]"); break;
          case ';': push(Tok::kSemi, ";"); break;
          case '?': push(Tok::kQuestion, "?"); break;
          case ':': push(Tok::kColon, ":"); break;
          case ',': push(Tok::kComma, ","); break;
          case '=': push(Tok::kAssign, "="); break;
          case '+': push(Tok::kPlus, "+"); break;
          case '-': push(Tok::kMinus, "-"); break;
          case '*': push(Tok::kStar, "*"); break;
          case '/': push(Tok::kSlash, "/"); break;
          case '%': push(Tok::kPercent, "%"); break;
          case '&': push(Tok::kAmp, "&"); break;
          case '|': push(Tok::kPipe, "|"); break;
          case '^': push(Tok::kCaret, "^"); break;
          case '~': push(Tok::kTilde, "~"); break;
          case '!': push(Tok::kBang, "!"); break;
          case '<': push(Tok::kLt, "<"); break;
          case '>': push(Tok::kGt, ">"); break;
          default:
            lexError(line, std::string("unexpected character '") + c +
                               "'");
        }
        ++i;
    }

    Token eof;
    eof.kind = Tok::kEof;
    eof.line = line;
    out.push_back(eof);
    return out;
}

const char*
tokName(Tok t)
{
    switch (t) {
      case Tok::kEof: return "<eof>";
      case Tok::kIdent: return "identifier";
      case Tok::kNumber: return "number";
      case Tok::kInt: return "'int'";
      case Tok::kVoid: return "'void'";
      case Tok::kIf: return "'if'";
      case Tok::kElse: return "'else'";
      case Tok::kWhile: return "'while'";
      case Tok::kFor: return "'for'";
      case Tok::kDo: return "'do'";
      case Tok::kReturn: return "'return'";
      case Tok::kBreak: return "'break'";
      case Tok::kContinue: return "'continue'";
      case Tok::kLParen: return "'('";
      case Tok::kRParen: return "')'";
      case Tok::kLBrace: return "'{'";
      case Tok::kRBrace: return "'}'";
      case Tok::kLBracket: return "'['";
      case Tok::kRBracket: return "']'";
      case Tok::kSemi: return "';'";
      case Tok::kComma: return "','";
      default: return "operator";
    }
}

} // namespace crisp::cc
