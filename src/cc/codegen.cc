/**
 * @file
 * CRISP-C code generation: AST -> CodeList.
 *
 * Conventions:
 *  - Locals and compiler temporaries occupy stack slots 0..N-1 of the
 *    callee frame (allocated by `enter N`); the return address is at
 *    slot N; arguments at N+1, N+2, ...
 *  - The caller materializes arguments, allocates an argument area with
 *    `enter k`, copies arguments in, `call`s, and releases the area
 *    with `leave k`.
 *  - Function results are returned in the accumulator.
 *  - Expression temporaries use frame slots; the accumulator carries
 *    three-operand ALU results (the paper's `and3 i,1` /
 *    `cmp.= Accum,0` idiom falls out of this naturally).
 */

#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "ast.hh"
#include "code.hh"
#include "compiler.hh"
#include "isa/types.hh"

namespace crisp::cc
{

namespace
{

/** Parameter pseudo-slot base, fixed up once the frame size is known. */
constexpr std::int32_t kParamBase = 1 << 20;

[[noreturn]] void
cgError(int line, const std::string& msg)
{
    throw CrispError("crispcc line " + std::to_string(line) + ": " + msg);
}

/** A generated value: an operand plus an optional owned temp slot. */
struct Val
{
    Operand op;
    std::int32_t temp = -1; //!< frame slot to free when consumed
};

struct GlobalInfo
{
    Addr address = 0;
    std::int32_t arraySize = 0; // 0 = scalar
};

struct FuncInfo
{
    int arity = 0;
    bool returnsValue = true;
};

class CodeGen
{
  public:
    explicit CodeGen(const TranslationUnit& tu) : tu_(tu)
    {
        Addr daddr = kDataBase;
        for (const GlobalDecl& g : tu.globals) {
            if (globals_.count(g.name))
                cgError(g.line, "duplicate global: " + g.name);
            GlobalInfo gi;
            gi.address = daddr;
            gi.arraySize = g.arraySize;
            globals_[g.name] = gi;
            daddr += static_cast<Addr>(
                         g.arraySize > 0 ? g.arraySize : 1) *
                     kWordBytes;
        }
        nextDataAddr_ = daddr; // jump tables are laid out after globals
        for (const FuncDecl& f : tu.functions) {
            if (funcs_.count(f.name))
                cgError(f.line, "duplicate function: " + f.name);
            funcs_[f.name] = {static_cast<int>(f.params.size()),
                              f.returnsValue};
        }
    }

    const std::vector<std::pair<std::string, std::vector<std::string>>>&
    jumpTables() const
    {
        return jumpTables_;
    }

    CodeList
    run(bool emit_crt0,
        std::map<std::string, std::map<std::int32_t, std::string>>*
            slot_names)
    {
        slotNamesOut_ = slot_names;
        if (emit_crt0) {
            if (!funcs_.count("main"))
                throw CrispError("crispcc: no main() function");
            code_.push_back(CodeItem::label("_start"));
            code_.push_back(CodeItem::branch(Opcode::kCall, "main"));
            code_.push_back(CodeItem::instr(Instruction::halt()));
        }
        for (const FuncDecl& f : tu_.functions)
            genFunction(f);
        return std::move(code_);
    }

  private:
    // Emission helpers -------------------------------------------------

    void emit(const Instruction& i) { code_.push_back(CodeItem::instr(i)); }
    void emitLabel(std::string n) { code_.push_back(CodeItem::label(std::move(n))); }

    void
    emitBranch(Opcode op, const std::string& target)
    {
        code_.push_back(CodeItem::branch(op, target));
    }

    std::string
    newLabel(const std::string& hint)
    {
        return "_" + func_ + "_" + hint + "_" +
               std::to_string(labelSeq_++);
    }

    // Frame management --------------------------------------------------

    std::int32_t
    allocSlot()
    {
        const std::int32_t s = nextSlot_++;
        if (nextSlot_ > highWater_)
            highWater_ = nextSlot_;
        return s;
    }

    std::int32_t
    allocTemp()
    {
        if (!freeTemps_.empty()) {
            const std::int32_t s = freeTemps_.back();
            freeTemps_.pop_back();
            return s;
        }
        return allocSlot();
    }

    void
    release(Val& v)
    {
        if (v.temp >= 0) {
            freeTemps_.push_back(v.temp);
            v.temp = -1;
        }
    }

    /** Stack operand for a frame slot, at the current SP adjustment. */
    Operand
    slotOperand(std::int32_t slot) const
    {
        return Operand::stack(slot + frameAdjust_);
    }

    // Name resolution ----------------------------------------------------

    std::optional<std::int32_t>
    lookupLocal(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            const auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        return std::nullopt;
    }

    /** Operand for a scalar variable reference. */
    Operand
    varOperand(const std::string& name, int line) const
    {
        if (const auto slot = lookupLocal(name))
            return slotOperand(*slot);
        const auto g = globals_.find(name);
        if (g != globals_.end()) {
            if (g->second.arraySize > 0)
                cgError(line, "array used without subscript: " + name);
            return Operand::abs(g->second.address);
        }
        cgError(line, "undefined variable: " + name);
    }

    // Expression code generation ----------------------------------------

    /** Constant folding. */
    std::optional<std::int32_t>
    constEval(const Expr& e) const
    {
        switch (e.kind) {
          case ExprKind::kNumber:
            return e.number;
          case ExprKind::kUnary: {
            const auto v = constEval(*e.lhs);
            if (!v)
                return std::nullopt;
            switch (e.unop) {
              case UnOp::kNeg: return -*v;
              case UnOp::kNot: return *v == 0 ? 1 : 0;
              case UnOp::kBitNot: return ~*v;
            }
            return std::nullopt;
          }
          case ExprKind::kBinary: {
            const auto a = constEval(*e.lhs);
            const auto b = constEval(*e.rhs);
            if (!a || !b)
                return std::nullopt;
            switch (e.binop) {
              case BinOp::kAdd: return *a + *b;
              case BinOp::kSub: return *a - *b;
              case BinOp::kMul: return *a * *b;
              case BinOp::kDiv: return *b ? *a / *b : 0;
              case BinOp::kRem: return *b ? *a % *b : 0;
              case BinOp::kAnd: return *a & *b;
              case BinOp::kOr:  return *a | *b;
              case BinOp::kXor: return *a ^ *b;
              case BinOp::kShl: return *a << (*b & 31);
              case BinOp::kShr:
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(*a) >> (*b & 31));
              case BinOp::kEq: return *a == *b;
              case BinOp::kNe: return *a != *b;
              case BinOp::kLt: return *a < *b;
              case BinOp::kLe: return *a <= *b;
              case BinOp::kGt: return *a > *b;
              case BinOp::kGe: return *a >= *b;
              case BinOp::kLAnd: return (*a && *b) ? 1 : 0;
              case BinOp::kLOr:  return (*a || *b) ? 1 : 0;
              default: return std::nullopt;
            }
          }
          case ExprKind::kTernary: {
            const auto c = constEval(*e.lhs);
            const auto a = constEval(*e.rhs);
            const auto b = constEval(*e.third);
            if (!c || !a || !b)
                return std::nullopt;
            return *c ? *a : *b;
          }
          default:
            return std::nullopt;
        }
    }

    /** Move a value that lives in the accumulator into a temp slot. */
    Val
    materialize(Val v)
    {
        if (v.op.mode != AddrMode::kAccum)
            return v;
        const std::int32_t t = allocTemp();
        emit(Instruction::mov(slotOperand(t), Operand::accum()));
        return {slotOperand(t), t};
    }

    static std::optional<Opcode>
    alu2Op(BinOp op)
    {
        switch (op) {
          case BinOp::kAdd: return Opcode::kAdd;
          case BinOp::kSub: return Opcode::kSub;
          case BinOp::kMul: return Opcode::kMul;
          case BinOp::kDiv: return Opcode::kDiv;
          case BinOp::kRem: return Opcode::kRem;
          case BinOp::kAnd: return Opcode::kAnd;
          case BinOp::kOr:  return Opcode::kOr;
          case BinOp::kXor: return Opcode::kXor;
          case BinOp::kShl: return Opcode::kShl;
          case BinOp::kShr: return Opcode::kShr;
          default: return std::nullopt;
        }
    }

    static std::optional<Opcode>
    alu3Op(BinOp op)
    {
        switch (op) {
          case BinOp::kAdd: return Opcode::kAdd3;
          case BinOp::kSub: return Opcode::kSub3;
          case BinOp::kMul: return Opcode::kMul3;
          case BinOp::kAnd: return Opcode::kAnd3;
          case BinOp::kOr:  return Opcode::kOr3;
          case BinOp::kXor: return Opcode::kXor3;
          default: return std::nullopt;
        }
    }

    static bool
    isRelational(BinOp op)
    {
        return op >= BinOp::kEq && op <= BinOp::kGe;
    }

    /** Compare opcode for a relation (or its negation). */
    static Opcode
    cmpOp(BinOp op, bool negate)
    {
        switch (op) {
          case BinOp::kEq: return negate ? Opcode::kCmpNe : Opcode::kCmpEq;
          case BinOp::kNe: return negate ? Opcode::kCmpEq : Opcode::kCmpNe;
          case BinOp::kLt: return negate ? Opcode::kCmpGe : Opcode::kCmpLt;
          case BinOp::kLe: return negate ? Opcode::kCmpGt : Opcode::kCmpLe;
          case BinOp::kGt: return negate ? Opcode::kCmpLe : Opcode::kCmpGt;
          case BinOp::kGe: return negate ? Opcode::kCmpLt : Opcode::kCmpGe;
          default:
            throw CrispError("cmpOp: not a relation");
        }
    }

    /** Lvalue operand for kVar / kIndex nodes. */
    Val
    genLvalue(const Expr& e)
    {
        if (e.kind == ExprKind::kVar)
            return {varOperand(e.name, e.line), -1};
        if (e.kind != ExprKind::kIndex)
            cgError(e.line, "not an lvalue");

        const auto g = globals_.find(e.name);
        if (g == globals_.end() || g->second.arraySize == 0) {
            cgError(e.line, "subscript of non-array: " + e.name +
                                " (only global arrays are supported)");
        }
        // t = (index << 2) + base; result is indirect through t.
        Val idx = genValue(*e.rhs);
        const std::int32_t t = allocTemp();
        emit(Instruction::mov(slotOperand(t), idx.op));
        release(idx);
        emit(Instruction::alu(Opcode::kShl, slotOperand(t),
                              Operand::imm(2)));
        emit(Instruction::alu(
            Opcode::kAdd, slotOperand(t),
            Operand::imm(static_cast<std::int32_t>(g->second.address))));
        // The indirect operand names the slot WITHOUT the current frame
        // adjustment baked in twice: Operand::ind takes the adjusted
        // slot number, like slotOperand does.
        return {Operand::ind(t + frameAdjust_), t};
    }

    /** Does assigning through @p dst possibly alias reads of @p e? */
    static bool
    sameScalar(const Expr& a, const Expr& b)
    {
        return a.kind == ExprKind::kVar && b.kind == ExprKind::kVar &&
               a.name == b.name;
    }

    /** Generate `dst OP= src` style updates; returns the dst operand. */
    Val
    genAssign(const Expr& e)
    {
        const Expr& lhs = *e.lhs;

        if (e.binop != BinOp::kNone) {
            // Compound assignment: op dst, src.
            const auto op2 = alu2Op(e.binop);
            if (!op2)
                cgError(e.line, "operator not supported in compound "
                                "assignment");
            Val rv = genValue(*e.rhs);
            Val dst = genLvalue(lhs);
            emit(Instruction::alu(*op2, dst.op, rv.op));
            release(rv);
            return dst;
        }

        // Plain assignment. Fuse `x = x OP y` (and commutative
        // `x = y OP x`) into a single memory-to-memory ALU op — the
        // paper's `add sum,i` for `sum += i`.
        const Expr& rhs = *e.rhs;
        if (rhs.kind == ExprKind::kBinary && lhs.kind == ExprKind::kVar) {
            const auto op2 = alu2Op(rhs.binop);
            const bool commutative =
                rhs.binop == BinOp::kAdd || rhs.binop == BinOp::kMul ||
                rhs.binop == BinOp::kAnd || rhs.binop == BinOp::kOr ||
                rhs.binop == BinOp::kXor;
            if (op2 && sameScalar(lhs, *rhs.lhs)) {
                Val rv = genValue(*rhs.rhs);
                Val dst = genLvalue(lhs);
                emit(Instruction::alu(*op2, dst.op, rv.op));
                release(rv);
                return dst;
            }
            if (op2 && commutative && sameScalar(lhs, *rhs.rhs)) {
                Val rv = genValue(*rhs.lhs);
                Val dst = genLvalue(lhs);
                emit(Instruction::alu(*op2, dst.op, rv.op));
                release(rv);
                return dst;
            }
        }

        Val rv = genValue(rhs);
        Val dst = genLvalue(lhs);
        emit(Instruction::mov(dst.op, rv.op));
        release(rv);
        return dst;
    }

    /** Boolean (0/1) materialization of a condition. */
    Val
    genBoolValue(const Expr& e)
    {
        const std::int32_t t = allocTemp();
        const std::string end = newLabel("bool");
        emit(Instruction::mov(slotOperand(t), Operand::imm(1)));
        genCondBranch(e, end, /*branch_if_true=*/true);
        emit(Instruction::mov(slotOperand(t), Operand::imm(0)));
        emitLabel(end);
        return {slotOperand(t), t};
    }

    Val
    genCall(const Expr& e, bool want_value = true)
    {
        const auto f = funcs_.find(e.name);
        if (f == funcs_.end())
            cgError(e.line, "undefined function: " + e.name);
        if (static_cast<int>(e.args.size()) != f->second.arity) {
            cgError(e.line, "wrong argument count for " + e.name);
        }
        if (want_value && !f->second.returnsValue) {
            cgError(e.line, "void function " + e.name +
                                " used in an expression");
        }

        // Evaluate complex arguments into temps before opening the
        // argument area (their evaluation may itself contain calls and
        // would otherwise see a shifted frame). Immediates and plain
        // variable references are deferred and copied directly.
        struct Arg
        {
            bool deferred = false;
            const Expr* expr = nullptr; // deferred kVar / constant
            Val val;                    // eager: temp-held value
        };
        std::vector<Arg> argv;
        for (const ExprPtr& a : e.args) {
            Arg arg;
            if (constEval(*a) || a->kind == ExprKind::kVar) {
                arg.deferred = true;
                arg.expr = a.get();
            } else {
                // The value itself (not, e.g., an indirection pointer)
                // must land in a temp slot that survives the frame
                // shift of the argument area.
                Val v = genValue(*a);
                if (v.op.mode == AddrMode::kStack && v.temp >= 0) {
                    arg.val = v;
                } else {
                    const std::int32_t t = allocTemp();
                    emit(Instruction::mov(slotOperand(t), v.op));
                    release(v);
                    arg.val = Val{slotOperand(t), t};
                }
            }
            argv.push_back(std::move(arg));
        }

        const int k = static_cast<int>(argv.size());
        if (k > 0) {
            emit(Instruction::enter(k));
            frameAdjust_ += k;
            for (int j = 0; j < k; ++j) {
                // Argument slots are the first k words of the new area:
                // raw slots 0..k-1 (frameAdjust_ already moved the rest).
                Operand src;
                if (argv[j].deferred) {
                    // Re-resolved here so the current frame adjustment
                    // is applied.
                    src = genValue(*argv[j].expr).op;
                } else {
                    src = slotOperand(argv[j].val.temp);
                }
                emit(Instruction::mov(Operand::stack(j), src));
            }
        }
        emitBranch(Opcode::kCall, e.name);
        if (k > 0) {
            emit(Instruction::leave(k));
            frameAdjust_ -= k;
        }
        for (Arg& a : argv)
            release(a.val);
        return {Operand::accum(), -1};
    }

    /**
     * Copy a non-imm, non-temp value into a temp so it survives frame
     * adjustment (argument evaluation).
     */
    Val
    plainToTemp(Val v)
    {
        if (v.temp >= 0 || v.op.mode == AddrMode::kAccum ||
            v.op.mode == AddrMode::kImm) {
            return v;
        }
        const std::int32_t t = allocTemp();
        emit(Instruction::mov(slotOperand(t), v.op));
        return {slotOperand(t), t};
    }

    Val
    genValue(const Expr& e)
    {
        if (const auto c = constEval(e))
            return {Operand::imm(*c), -1};

        switch (e.kind) {
          case ExprKind::kNumber:
            return {Operand::imm(e.number), -1};
          case ExprKind::kVar:
            return {varOperand(e.name, e.line), -1};
          case ExprKind::kIndex:
            return genLvalue(e);
          case ExprKind::kAssign:
            return genAssign(e);
          case ExprKind::kCall:
            return genCall(e);
          case ExprKind::kPreIncDec: {
            Val dst = genLvalue(*e.lhs);
            emit(Instruction::alu(
                e.increment ? Opcode::kAdd : Opcode::kSub, dst.op,
                Operand::imm(1)));
            return dst;
          }
          case ExprKind::kPostIncDec: {
            Val dst = genLvalue(*e.lhs);
            const std::int32_t t = allocTemp();
            emit(Instruction::mov(slotOperand(t), dst.op));
            emit(Instruction::alu(
                e.increment ? Opcode::kAdd : Opcode::kSub, dst.op,
                Operand::imm(1)));
            release(dst);
            return {slotOperand(t), t};
          }
          case ExprKind::kUnary:
            switch (e.unop) {
              case UnOp::kNeg: {
                Val v = genValue(*e.lhs);
                emit(Instruction::alu(Opcode::kSub3, Operand::imm(0),
                                      v.op));
                release(v);
                return {Operand::accum(), -1};
              }
              case UnOp::kBitNot: {
                Val v = genValue(*e.lhs);
                emit(Instruction::alu(Opcode::kXor3, v.op,
                                      Operand::imm(-1)));
                release(v);
                return {Operand::accum(), -1};
              }
              case UnOp::kNot:
                return genBoolValue(e);
            }
            break;
          case ExprKind::kTernary: {
            if (const auto c = constEval(*e.lhs)) {
                // Constant condition: only the chosen arm exists.
                return genValue(*c ? *e.rhs : *e.third);
            }
            const std::int32_t t = allocTemp();
            const std::string els = newLabel("terf");
            const std::string end = newLabel("tend");
            genCondBranch(*e.lhs, els, false);
            {
                Val a = genValue(*e.rhs);
                emit(Instruction::mov(slotOperand(t), a.op));
                release(a);
            }
            emitBranch(Opcode::kJmp, end);
            emitLabel(els);
            {
                Val b = genValue(*e.third);
                emit(Instruction::mov(slotOperand(t), b.op));
                release(b);
            }
            emitLabel(end);
            return {slotOperand(t), t};
          }
          case ExprKind::kBinary: {
            if (isRelational(e.binop) || e.binop == BinOp::kLAnd ||
                e.binop == BinOp::kLOr) {
                return genBoolValue(e);
            }
            Val lv = genValue(*e.lhs);
            if (lv.op.mode == AddrMode::kAccum)
                lv = materialize(lv);
            Val rv = genValue(*e.rhs);

            // If the left side already lives in a temp we own, operate
            // in place.
            const auto op2 = alu2Op(e.binop);
            if (lv.temp >= 0 && lv.op.mode == AddrMode::kStack && op2) {
                emit(Instruction::alu(*op2, lv.op, rv.op));
                release(rv);
                return lv;
            }
            // Otherwise prefer the accumulator three-operand form.
            if (const auto op3 = alu3Op(e.binop)) {
                emit(Instruction::alu(*op3, lv.op, rv.op));
                release(lv);
                release(rv);
                return {Operand::accum(), -1};
            }
            // Fall back: copy to a temp, then two-operand ALU.
            if (!op2)
                cgError(e.line, "operator not supported");
            const std::int32_t t = allocTemp();
            emit(Instruction::mov(slotOperand(t), lv.op));
            release(lv);
            emit(Instruction::alu(*op2, slotOperand(t), rv.op));
            release(rv);
            return {slotOperand(t), t};
          }
        }
        cgError(e.line, "cannot generate code for expression");
    }

    /** Expression-statement: evaluate for side effects only. */
    void
    genValueDiscard(const Expr& e)
    {
        switch (e.kind) {
          case ExprKind::kAssign: {
            Val v = genAssign(e);
            release(v);
            return;
          }
          case ExprKind::kPreIncDec:
          case ExprKind::kPostIncDec: {
            // No old-value temp needed when the result is unused.
            Val dst = genLvalue(*e.lhs);
            emit(Instruction::alu(
                e.increment ? Opcode::kAdd : Opcode::kSub, dst.op,
                Operand::imm(1)));
            release(dst);
            return;
          }
          case ExprKind::kCall: {
            Val v = genCall(e, /*want_value=*/false);
            release(v);
            return;
          }
          default: {
            // Pure expression with no effect (but possible calls
            // inside): generate and drop.
            Val v = genValue(e);
            release(v);
            return;
          }
        }
    }

    /**
     * Branch to @p target when truth(expr) == @p branch_if_true.
     * Follows the paper's idiom: the compare sense is negated as needed
     * so the emitted branch is always iftjmp.
     */
    void
    genCondBranch(const Expr& e, const std::string& target,
                  bool branch_if_true)
    {
        if (const auto c = constEval(e)) {
            if ((*c != 0) == branch_if_true)
                emitBranch(Opcode::kJmp, target);
            return;
        }

        if (e.kind == ExprKind::kUnary && e.unop == UnOp::kNot) {
            genCondBranch(*e.lhs, target, !branch_if_true);
            return;
        }

        if (e.kind == ExprKind::kBinary && e.binop == BinOp::kLAnd) {
            if (branch_if_true) {
                const std::string skip = newLabel("and");
                genCondBranch(*e.lhs, skip, false);
                genCondBranch(*e.rhs, target, true);
                emitLabel(skip);
            } else {
                genCondBranch(*e.lhs, target, false);
                genCondBranch(*e.rhs, target, false);
            }
            return;
        }
        if (e.kind == ExprKind::kBinary && e.binop == BinOp::kLOr) {
            if (branch_if_true) {
                genCondBranch(*e.lhs, target, true);
                genCondBranch(*e.rhs, target, true);
            } else {
                const std::string skip = newLabel("or");
                genCondBranch(*e.lhs, skip, true);
                genCondBranch(*e.rhs, target, false);
                emitLabel(skip);
            }
            return;
        }

        if (e.kind == ExprKind::kBinary && isRelational(e.binop)) {
            Val lv = genValue(*e.lhs);
            if (lv.op.mode == AddrMode::kAccum)
                lv = materialize(lv);
            Val rv = genValue(*e.rhs);
            emit(Instruction::cmp(cmpOp(e.binop, !branch_if_true), lv.op,
                                  rv.op));
            release(lv);
            release(rv);
            emitBranch(Opcode::kIfTJmp, target);
            return;
        }

        // General truth test: cmp against zero (`and3 i,1` followed by
        // `cmp.= Accum,0` in the paper's Table 3).
        Val v = genValue(e);
        emit(Instruction::cmp(branch_if_true ? Opcode::kCmpNe
                                             : Opcode::kCmpEq,
                              v.op, Operand::imm(0)));
        release(v);
        emitBranch(Opcode::kIfTJmp, target);
    }

    // Statements ---------------------------------------------------------

    struct LoopCtx
    {
        std::string breakLabel;
        std::string continueLabel;
    };

    void
    genStmt(const Stmt& s)
    {
        switch (s.kind) {
          case StmtKind::kEmpty:
            return;
          case StmtKind::kBlock: {
            scopes_.emplace_back();
            for (const StmtPtr& sub : s.stmts)
                genStmt(*sub);
            scopes_.pop_back();
            return;
          }
          case StmtKind::kDecl: {
            const std::int32_t slot = allocSlot();
            scopes_.back()[s.name] = slot;
            slotNames_[slot] = s.name;
            if (s.init) {
                Val v = genValue(*s.init);
                emit(Instruction::mov(slotOperand(slot), v.op));
                release(v);
            }
            return;
          }
          case StmtKind::kExpr:
            genValueDiscard(*s.expr);
            return;
          case StmtKind::kIf: {
            const std::string els = newLabel("else");
            genCondBranch(*s.cond, els, false);
            genStmt(*s.body);
            if (s.elseBody) {
                const std::string end = newLabel("endif");
                emitBranch(Opcode::kJmp, end);
                emitLabel(els);
                genStmt(*s.elseBody);
                emitLabel(end);
            } else {
                emitLabel(els);
            }
            return;
          }
          case StmtKind::kWhile:
            genLoop(nullptr, nullptr, s.cond.get(), nullptr, *s.body);
            return;
          case StmtKind::kFor:
            genLoop(s.initStmt.get(), s.init.get(), s.cond.get(),
                    s.step.get(), *s.body);
            return;
          case StmtKind::kDoWhile: {
            const std::string top = newLabel("top");
            const std::string test = newLabel("cont");
            const std::string brk = newLabel("brk");
            loops_.push_back({brk, test});
            emitLabel(top);
            genStmt(*s.body);
            emitLabel(test);
            genCondBranch(*s.cond, top, true);
            emitLabel(brk);
            loops_.pop_back();
            return;
          }
          case StmtKind::kReturn: {
            if (s.expr) {
                Val v = genValue(*s.expr);
                if (v.op.mode != AddrMode::kAccum) {
                    emit(Instruction::mov(Operand::accum(), v.op));
                }
                release(v);
            }
            emitBranch(Opcode::kJmp, retLabel_);
            return;
          }
          case StmtKind::kSwitch:
            genSwitch(s);
            return;
          case StmtKind::kCaseLabel:
            cgError(s.line, "case label outside switch");
          case StmtKind::kBreak:
            if (loops_.empty())
                cgError(s.line, "break outside loop or switch");
            emitBranch(Opcode::kJmp, loops_.back().breakLabel);
            return;
          case StmtKind::kContinue: {
            for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
                if (!it->continueLabel.empty()) {
                    emitBranch(Opcode::kJmp, it->continueLabel);
                    return;
                }
            }
            cgError(s.line, "continue outside loop");
        }
        }
    }

    /**
     * switch statement. Dense case sets compile to a data-segment jump
     * table dispatched through an indirect branch — the construct the
     * paper names as the source of compiler-generated indirect jumps.
     * Sparse sets fall back to a compare chain.
     */
    void
    genSwitch(const Stmt& s)
    {
        struct CaseInfo
        {
            std::int32_t value;
            std::string label;
        };
        std::vector<CaseInfo> cases;
        std::string default_label;
        const std::string end = newLabel("swend");

        std::map<std::size_t, std::string> markers;
        for (std::size_t i = 0; i < s.stmts.size(); ++i) {
            const Stmt& st = *s.stmts[i];
            if (st.kind != StmtKind::kCaseLabel)
                continue;
            const std::string label = newLabel("case");
            markers[i] = label;
            if (st.expr) {
                for (const CaseInfo& c : cases) {
                    if (c.value == st.expr->number)
                        cgError(st.line, "duplicate case value");
                }
                cases.push_back({st.expr->number, label});
            } else {
                default_label = label;
            }
        }
        if (default_label.empty())
            default_label = end;

        // Dispatch.
        if (!cases.empty()) {
            Val v = materialize(genValue(*s.expr));
            std::int32_t lo = cases[0].value;
            std::int32_t hi = cases[0].value;
            for (const CaseInfo& c : cases) {
                lo = c.value < lo ? c.value : lo;
                hi = c.value > hi ? c.value : hi;
            }
            const std::int64_t range =
                static_cast<std::int64_t>(hi) - lo + 1;
            const bool dense =
                cases.size() >= 3 &&
                range <= 2 * static_cast<std::int64_t>(cases.size()) + 8 &&
                range <= 512;

            if (dense) {
                // Build the table (default-filled, cases patched in).
                std::vector<std::string> entries(
                    static_cast<std::size_t>(range), default_label);
                for (const CaseInfo& c : cases) {
                    entries[static_cast<std::size_t>(c.value - lo)] =
                        c.label;
                }
                const std::string tname =
                    "_" + func_ + "_jumptab_" +
                    std::to_string(labelSeq_++);
                const Addr taddr = nextDataAddr_;
                nextDataAddr_ +=
                    static_cast<Addr>(entries.size()) * kWordBytes;
                jumpTables_.emplace_back(tname, std::move(entries));

                // index = (v - lo); bound-check unsigned; then
                // target = mem[taddr + 4*index]; jmp *target.
                const std::int32_t t = allocTemp();
                emit(Instruction::mov(slotOperand(t), v.op));
                release(v);
                if (lo != 0) {
                    emit(Instruction::alu(Opcode::kSub, slotOperand(t),
                                          Operand::imm(lo)));
                }
                emit(Instruction::cmp(
                    Opcode::kCmpGeU, slotOperand(t),
                    Operand::imm(static_cast<std::int32_t>(range))));
                emitBranch(Opcode::kIfTJmp, default_label);
                emit(Instruction::alu(Opcode::kShl, slotOperand(t),
                                      Operand::imm(2)));
                emit(Instruction::alu(
                    Opcode::kAdd, slotOperand(t),
                    Operand::imm(static_cast<std::int32_t>(taddr))));
                const std::int32_t tt = allocTemp();
                emit(Instruction::mov(slotOperand(tt),
                                      Operand::ind(t + frameAdjust_)));
                emit(Instruction::branchFar(
                    Opcode::kJmp, BranchMode::kIndSp,
                    static_cast<std::uint32_t>(tt + frameAdjust_)));
                freeTemps_.push_back(t);
                freeTemps_.push_back(tt);
            } else {
                for (const CaseInfo& c : cases) {
                    emit(Instruction::cmp(Opcode::kCmpEq, v.op,
                                          Operand::imm(c.value)));
                    emitBranch(Opcode::kIfTJmp, c.label);
                }
                release(v);
                emitBranch(Opcode::kJmp, default_label);
            }
        } else {
            // No cases: evaluate for side effects, go to default.
            genValueDiscard(*s.expr);
            emitBranch(Opcode::kJmp, default_label);
        }

        // Body with fall-through semantics; break targets the end.
        loops_.push_back({end, std::string()});
        for (std::size_t i = 0; i < s.stmts.size(); ++i) {
            const auto m = markers.find(i);
            if (m != markers.end())
                emitLabel(m->second);
            else if (s.stmts[i]->kind != StmtKind::kCaseLabel)
                genStmt(*s.stmts[i]);
        }
        loops_.pop_back();
        emitLabel(end);
    }

    /**
     * Rotated loop: bottom-test with a guard jump only when the first
     * iteration cannot be proven. A provable `for (i = 0; i < 1024;)`
     * produces exactly the paper's guard-free shape.
     */
    void
    genLoop(const Stmt* init_stmt, const Expr* init_expr,
            const Expr* cond, const Expr* step, const Stmt& body)
    {
        scopes_.emplace_back(); // for-init declarations scope

        std::string init_var;
        std::optional<std::int32_t> init_const;
        if (init_stmt != nullptr) {
            // `for (int i = ...)`: the declarations must live in the
            // loop's own scope, not a throwaway block.
            for (const StmtPtr& d : init_stmt->stmts)
                genStmt(*d);
            // `for (int i = C; ...)`
            if (init_stmt->stmts.size() == 1 &&
                init_stmt->stmts[0]->kind == StmtKind::kDecl &&
                init_stmt->stmts[0]->init) {
                init_var = init_stmt->stmts[0]->name;
                init_const = constEval(*init_stmt->stmts[0]->init);
            }
        } else if (init_expr != nullptr) {
            genValueDiscard(*init_expr);
            if (init_expr->kind == ExprKind::kAssign &&
                init_expr->binop == BinOp::kNone &&
                init_expr->lhs->kind == ExprKind::kVar) {
                init_var = init_expr->lhs->name;
                init_const = constEval(*init_expr->rhs);
            }
        }

        const bool provable = firstIterationProvable(
            cond, init_var, init_const);

        const std::string top = newLabel("top");
        const std::string test = newLabel("test");
        const std::string cont = newLabel("cont");
        const std::string brk = newLabel("brk");

        if (cond != nullptr && !provable)
            emitBranch(Opcode::kJmp, test);

        loops_.push_back({brk, cont});
        emitLabel(top);
        genStmt(body);
        emitLabel(cont);
        if (step != nullptr)
            genValueDiscard(*step);
        emitLabel(test);
        if (cond != nullptr)
            genCondBranch(*cond, top, true);
        else
            emitBranch(Opcode::kJmp, top);
        emitLabel(brk);
        loops_.pop_back();

        scopes_.pop_back();
    }

    /** Is the loop condition provably true on the first iteration? */
    bool
    firstIterationProvable(const Expr* cond, const std::string& var,
                           std::optional<std::int32_t> var_value) const
    {
        if (cond == nullptr)
            return true;
        if (const auto c = constEval(*cond))
            return *c != 0;
        if (var.empty() || !var_value)
            return false;
        if (cond->kind != ExprKind::kBinary || !isRelational(cond->binop))
            return false;
        const auto rc = constEval(*cond->rhs);
        if (!rc || cond->lhs->kind != ExprKind::kVar ||
            cond->lhs->name != var) {
            return false;
        }
        const std::int32_t a = *var_value;
        const std::int32_t b = *rc;
        switch (cond->binop) {
          case BinOp::kEq: return a == b;
          case BinOp::kNe: return a != b;
          case BinOp::kLt: return a < b;
          case BinOp::kLe: return a <= b;
          case BinOp::kGt: return a > b;
          case BinOp::kGe: return a >= b;
          default: return false;
        }
    }

    // Functions ------------------------------------------------------------

    void
    genFunction(const FuncDecl& f)
    {
        func_ = f.name;
        retLabel_ = "_" + f.name + "_ret";
        nextSlot_ = 0;
        highWater_ = 0;
        freeTemps_.clear();
        frameAdjust_ = 0;
        slotNames_.clear();
        scopes_.clear();
        scopes_.emplace_back();

        for (std::size_t j = 0; j < f.params.size(); ++j) {
            scopes_.back()[f.params[j]] =
                kParamBase + static_cast<std::int32_t>(j);
        }

        emitLabel(f.name);
        const std::size_t enter_idx = code_.size();
        emit(Instruction::enter(0)); // backpatched below

        genStmt(*f.body);

        emitLabel(retLabel_);
        const std::size_t ret_idx = code_.size();
        emit(Instruction::ret(0)); // backpatched below

        // Backpatch the frame size and fix up parameter pseudo-slots:
        // param j lives at slot N + 1 + j once the frame size N is
        // known (locals, then the return address, then arguments).
        const std::int32_t frame = highWater_;
        code_[enter_idx].inst = Instruction::enter(frame);
        code_[ret_idx].inst = Instruction::ret(frame);
        for (std::size_t j = 0; j < f.params.size(); ++j) {
            slotNames_[frame + 1 + static_cast<std::int32_t>(j)] =
                f.params[j];
        }
        if (slotNamesOut_ != nullptr)
            (*slotNamesOut_)[f.name] = slotNames_;
        for (std::size_t i = enter_idx; i < code_.size(); ++i) {
            if (code_[i].kind != CodeItem::Kind::kInst)
                continue;
            for (Operand* o :
                 {&code_[i].inst.dst, &code_[i].inst.src}) {
                if ((o->mode == AddrMode::kStack ||
                     o->mode == AddrMode::kInd) &&
                    o->value >= kParamBase / 2) {
                    o->value = o->value - kParamBase + frame + 1;
                }
            }
        }
    }

    const TranslationUnit& tu_;
    CodeList code_;
    std::unordered_map<std::string, GlobalInfo> globals_;
    std::unordered_map<std::string, FuncInfo> funcs_;

    // Per-function state.
    std::string func_;
    std::string retLabel_;
    std::int32_t nextSlot_ = 0;
    std::int32_t highWater_ = 0;
    std::vector<std::int32_t> freeTemps_;
    std::int32_t frameAdjust_ = 0;
    std::vector<std::map<std::string, std::int32_t>> scopes_;
    std::map<std::int32_t, std::string> slotNames_;
    std::vector<LoopCtx> loops_;
    int labelSeq_ = 0;
    std::map<std::string, std::map<std::int32_t, std::string>>*
        slotNamesOut_ = nullptr;
    Addr nextDataAddr_ = kDataBase;
    std::vector<std::pair<std::string, std::vector<std::string>>>
        jumpTables_;
};

} // namespace

/** Entry point used by the compiler driver (see compiler.cc). */
CodeList
generateCode(
    const TranslationUnit& tu, bool emit_crt0,
    std::map<std::string, std::map<std::int32_t, std::string>>*
        slot_names,
    std::vector<std::pair<std::string, std::vector<std::string>>>*
        jump_tables)
{
    CodeGen gen(tu);
    CodeList code = gen.run(emit_crt0, slot_names);
    if (jump_tables != nullptr)
        *jump_tables = gen.jumpTables();
    return code;
}

} // namespace crisp::cc
