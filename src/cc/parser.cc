/**
 * @file
 * Recursive-descent parser for CRISP-C.
 */

#include "ast.hh"

#include "isa/types.hh"
#include "lexer.hh"

namespace crisp::cc
{

namespace
{

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    TranslationUnit
    parseUnit()
    {
        TranslationUnit tu;
        while (!at(Tok::kEof)) {
            const bool is_void = at(Tok::kVoid);
            if (!is_void)
                expect(Tok::kInt, "declaration");
            else
                advance();
            const Token name = expect(Tok::kIdent, "name");
            if (at(Tok::kLParen)) {
                tu.functions.push_back(parseFunction(name, !is_void));
            } else {
                if (is_void)
                    err(name.line, "void variable");
                parseGlobalTail(tu, name);
            }
        }
        return tu;
    }

  private:
    [[noreturn]] void
    err(int line, const std::string& msg)
    {
        throw CrispError("crispcc line " + std::to_string(line) + ": " +
                         msg);
    }

    const Token& peek() const { return toks_[pos_]; }
    bool at(Tok t) const { return peek().kind == t; }

    Token
    advance()
    {
        Token t = toks_[pos_];
        if (t.kind != Tok::kEof)
            ++pos_;
        return t;
    }

    bool
    accept(Tok t)
    {
        if (at(t)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(Tok t, const std::string& what)
    {
        if (!at(t)) {
            err(peek().line, "expected " + std::string(tokName(t)) +
                                 " (" + what + "), found '" +
                                 peek().text + "'");
        }
        return advance();
    }

    void
    parseGlobalTail(TranslationUnit& tu, Token first_name)
    {
        Token name = std::move(first_name);
        while (true) {
            GlobalDecl g;
            g.name = name.text;
            g.line = name.line;
            if (accept(Tok::kLBracket)) {
                const Token n = expect(Tok::kNumber, "array size");
                if (n.value <= 0)
                    err(n.line, "array size must be positive");
                g.arraySize = n.value;
                expect(Tok::kRBracket, "array size");
            } else if (accept(Tok::kAssign)) {
                bool neg = accept(Tok::kMinus);
                const Token n = expect(Tok::kNumber, "initializer");
                g.init = neg ? -n.value : n.value;
            }
            tu.globals.push_back(std::move(g));
            if (!accept(Tok::kComma))
                break;
            name = expect(Tok::kIdent, "name");
        }
        expect(Tok::kSemi, "global declaration");
    }

    FuncDecl
    parseFunction(const Token& name, bool returns_value)
    {
        FuncDecl f;
        f.name = name.text;
        f.line = name.line;
        f.returnsValue = returns_value;
        expect(Tok::kLParen, "parameter list");
        if (!at(Tok::kRParen)) {
            if (accept(Tok::kVoid)) {
                // int f(void)
            } else {
                do {
                    expect(Tok::kInt, "parameter type");
                    f.params.push_back(
                        expect(Tok::kIdent, "parameter").text);
                } while (accept(Tok::kComma));
            }
        }
        expect(Tok::kRParen, "parameter list");
        f.body = parseBlock();
        return f;
    }

    StmtPtr
    parseBlock()
    {
        const Token brace = expect(Tok::kLBrace, "block");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kBlock;
        s->line = brace.line;
        while (!at(Tok::kRBrace)) {
            if (at(Tok::kEof))
                err(brace.line, "unterminated block");
            if (at(Tok::kInt)) {
                parseLocalDecls(s->stmts);
            } else {
                s->stmts.push_back(parseStmt());
            }
        }
        advance(); // }
        return s;
    }

    void
    parseLocalDecls(std::vector<StmtPtr>& out)
    {
        expect(Tok::kInt, "declaration");
        do {
            const Token name = expect(Tok::kIdent, "variable");
            auto d = std::make_unique<Stmt>();
            d->kind = StmtKind::kDecl;
            d->line = name.line;
            d->name = name.text;
            if (accept(Tok::kAssign))
                d->init = parseAssign();
            out.push_back(std::move(d));
        } while (accept(Tok::kComma));
        expect(Tok::kSemi, "declaration");
    }

    StmtPtr
    parseStmt()
    {
        const Token& t = peek();
        switch (t.kind) {
          case Tok::kLBrace:
            return parseBlock();
          case Tok::kSemi: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kEmpty;
            s->line = t.line;
            return s;
          }
          case Tok::kIf: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kIf;
            s->line = t.line;
            expect(Tok::kLParen, "if");
            s->cond = parseExpr();
            expect(Tok::kRParen, "if");
            s->body = parseStmt();
            if (accept(Tok::kElse))
                s->elseBody = parseStmt();
            return s;
          }
          case Tok::kWhile: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kWhile;
            s->line = t.line;
            expect(Tok::kLParen, "while");
            s->cond = parseExpr();
            expect(Tok::kRParen, "while");
            s->body = parseStmt();
            return s;
          }
          case Tok::kDo: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kDoWhile;
            s->line = t.line;
            s->body = parseStmt();
            expect(Tok::kWhile, "do-while");
            expect(Tok::kLParen, "do-while");
            s->cond = parseExpr();
            expect(Tok::kRParen, "do-while");
            expect(Tok::kSemi, "do-while");
            return s;
          }
          case Tok::kFor: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kFor;
            s->line = t.line;
            expect(Tok::kLParen, "for");
            if (at(Tok::kInt)) {
                auto blk = std::make_unique<Stmt>();
                blk->kind = StmtKind::kBlock;
                blk->line = t.line;
                parseLocalDecls(blk->stmts);
                s->initStmt = std::move(blk);
            } else {
                if (!at(Tok::kSemi))
                    s->init = parseExpr();
                expect(Tok::kSemi, "for");
            }
            if (!at(Tok::kSemi))
                s->cond = parseExpr();
            expect(Tok::kSemi, "for");
            if (!at(Tok::kRParen))
                s->step = parseExpr();
            expect(Tok::kRParen, "for");
            s->body = parseStmt();
            return s;
          }
          case Tok::kSwitch: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kSwitch;
            s->line = t.line;
            expect(Tok::kLParen, "switch");
            s->expr = parseExpr();
            expect(Tok::kRParen, "switch");
            expect(Tok::kLBrace, "switch body");
            bool seen_default = false;
            while (!at(Tok::kRBrace)) {
                if (at(Tok::kEof))
                    err(t.line, "unterminated switch");
                if (accept(Tok::kCase)) {
                    auto c = std::make_unique<Stmt>();
                    c->kind = StmtKind::kCaseLabel;
                    c->line = t.line;
                    bool neg = accept(Tok::kMinus);
                    const Token n = expect(Tok::kNumber, "case value");
                    c->expr = std::make_unique<Expr>();
                    c->expr->kind = ExprKind::kNumber;
                    c->expr->number = neg ? -n.value : n.value;
                    expect(Tok::kColon, "case");
                    s->stmts.push_back(std::move(c));
                } else if (accept(Tok::kDefault)) {
                    if (seen_default)
                        err(t.line, "duplicate default");
                    seen_default = true;
                    auto c = std::make_unique<Stmt>();
                    c->kind = StmtKind::kCaseLabel;
                    c->line = t.line;
                    expect(Tok::kColon, "default");
                    s->stmts.push_back(std::move(c));
                } else if (at(Tok::kInt)) {
                    err(peek().line,
                        "declarations are not allowed directly inside "
                        "switch");
                } else {
                    s->stmts.push_back(parseStmt());
                }
            }
            advance(); // }
            return s;
          }
          case Tok::kReturn: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kReturn;
            s->line = t.line;
            if (!at(Tok::kSemi))
                s->expr = parseExpr();
            expect(Tok::kSemi, "return");
            return s;
          }
          case Tok::kBreak:
          case Tok::kContinue: {
            advance();
            auto s = std::make_unique<Stmt>();
            s->kind = t.kind == Tok::kBreak ? StmtKind::kBreak
                                            : StmtKind::kContinue;
            s->line = t.line;
            expect(Tok::kSemi, "statement");
            return s;
          }
          default: {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kExpr;
            s->line = t.line;
            s->expr = parseExpr();
            expect(Tok::kSemi, "expression statement");
            return s;
          }
        }
    }

    // Expressions ------------------------------------------------------

    ExprPtr parseExpr() { return parseAssign(); }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseTernary();
        BinOp op = BinOp::kNone;
        bool is_assign = true;
        switch (peek().kind) {
          case Tok::kAssign:        op = BinOp::kNone; break;
          case Tok::kPlusAssign:    op = BinOp::kAdd; break;
          case Tok::kMinusAssign:   op = BinOp::kSub; break;
          case Tok::kStarAssign:    op = BinOp::kMul; break;
          case Tok::kSlashAssign:   op = BinOp::kDiv; break;
          case Tok::kPercentAssign: op = BinOp::kRem; break;
          case Tok::kAmpAssign:     op = BinOp::kAnd; break;
          case Tok::kPipeAssign:    op = BinOp::kOr; break;
          case Tok::kCaretAssign:   op = BinOp::kXor; break;
          case Tok::kShlAssign:     op = BinOp::kShl; break;
          case Tok::kShrAssign:     op = BinOp::kShr; break;
          default: is_assign = false; break;
        }
        if (!is_assign)
            return lhs;
        const int line = peek().line;
        advance();
        if (lhs->kind != ExprKind::kVar && lhs->kind != ExprKind::kIndex)
            err(line, "assignment target is not an lvalue");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kAssign;
        e->line = line;
        e->binop = op;
        e->lhs = std::move(lhs);
        e->rhs = parseAssign();
        return e;
    }

    ExprPtr
    binary(ExprKind kind, BinOp op, int line, ExprPtr l, ExprPtr r)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->binop = op;
        e->line = line;
        e->lhs = std::move(l);
        e->rhs = std::move(r);
        return e;
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseLogicalOr();
        if (!at(Tok::kQuestion))
            return cond;
        const int line = advance().line;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kTernary;
        e->line = line;
        e->lhs = std::move(cond);
        e->rhs = parseAssign();
        expect(Tok::kColon, "ternary");
        e->third = parseAssign();
        return e;
    }

    ExprPtr
    parseLogicalOr()
    {
        ExprPtr e = parseLogicalAnd();
        while (at(Tok::kPipePipe)) {
            const int line = advance().line;
            e = binary(ExprKind::kBinary, BinOp::kLOr, line, std::move(e),
                       parseLogicalAnd());
        }
        return e;
    }

    ExprPtr
    parseLogicalAnd()
    {
        ExprPtr e = parseBitOr();
        while (at(Tok::kAmpAmp)) {
            const int line = advance().line;
            e = binary(ExprKind::kBinary, BinOp::kLAnd, line, std::move(e),
                       parseBitOr());
        }
        return e;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (at(Tok::kPipe)) {
            const int line = advance().line;
            e = binary(ExprKind::kBinary, BinOp::kOr, line, std::move(e),
                       parseBitXor());
        }
        return e;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (at(Tok::kCaret)) {
            const int line = advance().line;
            e = binary(ExprKind::kBinary, BinOp::kXor, line, std::move(e),
                       parseBitAnd());
        }
        return e;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr e = parseEquality();
        while (at(Tok::kAmp)) {
            const int line = advance().line;
            e = binary(ExprKind::kBinary, BinOp::kAnd, line, std::move(e),
                       parseEquality());
        }
        return e;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr e = parseRelational();
        while (at(Tok::kEq) || at(Tok::kNe)) {
            const Token t = advance();
            e = binary(ExprKind::kBinary,
                       t.kind == Tok::kEq ? BinOp::kEq : BinOp::kNe,
                       t.line, std::move(e), parseRelational());
        }
        return e;
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr e = parseShift();
        while (at(Tok::kLt) || at(Tok::kLe) || at(Tok::kGt) ||
               at(Tok::kGe)) {
            const Token t = advance();
            BinOp op = BinOp::kLt;
            if (t.kind == Tok::kLe)
                op = BinOp::kLe;
            else if (t.kind == Tok::kGt)
                op = BinOp::kGt;
            else if (t.kind == Tok::kGe)
                op = BinOp::kGe;
            e = binary(ExprKind::kBinary, op, t.line, std::move(e),
                       parseShift());
        }
        return e;
    }

    ExprPtr
    parseShift()
    {
        ExprPtr e = parseAdditive();
        while (at(Tok::kShl) || at(Tok::kShr)) {
            const Token t = advance();
            e = binary(ExprKind::kBinary,
                       t.kind == Tok::kShl ? BinOp::kShl : BinOp::kShr,
                       t.line, std::move(e), parseAdditive());
        }
        return e;
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        while (at(Tok::kPlus) || at(Tok::kMinus)) {
            const Token t = advance();
            e = binary(ExprKind::kBinary,
                       t.kind == Tok::kPlus ? BinOp::kAdd : BinOp::kSub,
                       t.line, std::move(e), parseMultiplicative());
        }
        return e;
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr e = parseUnary();
        while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
            const Token t = advance();
            BinOp op = BinOp::kMul;
            if (t.kind == Tok::kSlash)
                op = BinOp::kDiv;
            else if (t.kind == Tok::kPercent)
                op = BinOp::kRem;
            e = binary(ExprKind::kBinary, op, t.line, std::move(e),
                       parseUnary());
        }
        return e;
    }

    ExprPtr
    parseUnary()
    {
        const Token& t = peek();
        if (at(Tok::kMinus) || at(Tok::kBang) || at(Tok::kTilde)) {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kUnary;
            e->line = t.line;
            e->unop = t.kind == Tok::kMinus  ? UnOp::kNeg
                      : t.kind == Tok::kBang ? UnOp::kNot
                                             : UnOp::kBitNot;
            e->lhs = parseUnary();
            return e;
        }
        if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kPreIncDec;
            e->line = t.line;
            e->increment = t.kind == Tok::kPlusPlus;
            e->lhs = parseUnary();
            if (e->lhs->kind != ExprKind::kVar &&
                e->lhs->kind != ExprKind::kIndex) {
                err(t.line, "++/-- target is not an lvalue");
            }
            return e;
        }
        if (at(Tok::kPlus)) { // unary plus is a no-op
            advance();
            return parseUnary();
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
                const Token t = advance();
                if (e->kind != ExprKind::kVar &&
                    e->kind != ExprKind::kIndex) {
                    err(t.line, "++/-- target is not an lvalue");
                }
                auto p = std::make_unique<Expr>();
                p->kind = ExprKind::kPostIncDec;
                p->line = t.line;
                p->increment = t.kind == Tok::kPlusPlus;
                p->lhs = std::move(e);
                e = std::move(p);
                continue;
            }
            break;
        }
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        const Token t = advance();
        switch (t.kind) {
          case Tok::kNumber: {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kNumber;
            e->line = t.line;
            e->number = t.value;
            return e;
          }
          case Tok::kLParen: {
            ExprPtr e = parseExpr();
            expect(Tok::kRParen, "expression");
            return e;
          }
          case Tok::kIdent: {
            if (at(Tok::kLParen)) {
                advance();
                auto e = std::make_unique<Expr>();
                e->kind = ExprKind::kCall;
                e->line = t.line;
                e->name = t.text;
                if (!at(Tok::kRParen)) {
                    do {
                        e->args.push_back(parseAssign());
                    } while (accept(Tok::kComma));
                }
                expect(Tok::kRParen, "call");
                return e;
            }
            if (at(Tok::kLBracket)) {
                advance();
                auto e = std::make_unique<Expr>();
                e->kind = ExprKind::kIndex;
                e->line = t.line;
                e->name = t.text;
                e->rhs = parseExpr();
                expect(Tok::kRBracket, "index");
                return e;
            }
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kVar;
            e->line = t.line;
            e->name = t.text;
            return e;
          }
          default:
            err(t.line, "unexpected '" + t.text + "' in expression");
        }
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

TranslationUnit
parse(const std::string& source)
{
    return Parser(lex(source)).parseUnit();
}

} // namespace crisp::cc
