/**
 * @file
 * Effects extraction and dependence checks for code motion.
 */

#include "code.hh"

#include "isa/types.hh"

namespace crisp::cc
{

namespace
{

/** Record the locations read when operand @p o is used as a source. */
void
addRead(Effects& e, const Operand& o)
{
    switch (o.mode) {
      case AddrMode::kImm:
      case AddrMode::kNone:
        break;
      case AddrMode::kAccum:
        e.readsAccum = true;
        break;
      case AddrMode::kInd:
        // Reads the pointer slot and then an arbitrary location.
        e.memReads.push_back(Operand::stack(o.value));
        e.wildRead = true;
        break;
      default:
        e.memReads.push_back(o);
        break;
    }
}

/** Record the locations accessed when @p o is a destination. */
void
addWrite(Effects& e, const Operand& o)
{
    switch (o.mode) {
      case AddrMode::kImm:
      case AddrMode::kNone:
        break;
      case AddrMode::kAccum:
        e.writesAccum = true;
        break;
      case AddrMode::kInd:
        e.memReads.push_back(Operand::stack(o.value));
        e.wildWrite = true;
        break;
      default:
        e.memWrites.push_back(o);
        break;
    }
}

} // namespace

Effects
effectsOf(const Instruction& inst)
{
    Effects e;
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
      case Opcode::kEnter:
      case Opcode::kLeave:
      case Opcode::kReturn:
      case Opcode::kCall:
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
        e.barrier = true;
        break;
      case Opcode::kMov:
        addRead(e, inst.src);
        addWrite(e, inst.dst);
        break;
      default:
        if (isCompare(inst.op)) {
            addRead(e, inst.dst);
            addRead(e, inst.src);
            e.writesFlag = true;
        } else if (isAlu3(inst.op)) {
            addRead(e, inst.dst);
            addRead(e, inst.src);
            e.writesAccum = true;
        } else if (isAlu2(inst.op)) {
            addRead(e, inst.dst);
            addRead(e, inst.src);
            addWrite(e, inst.dst);
        } else {
            e.barrier = true;
        }
        break;
    }
    return e;
}

bool
memMayAlias(const Operand& a, const Operand& b)
{
    // Stack slots and absolute globals live in disjoint regions in our
    // layout (data segment low, stack at the top of memory).
    if (a.mode != b.mode)
        return false;
    return a.value == b.value;
}

bool
conflicts(const Effects& a, const Effects& b)
{
    if (a.barrier || b.barrier)
        return true;
    if ((a.writesAccum && (b.readsAccum || b.writesAccum)) ||
        (b.writesAccum && (a.readsAccum || a.writesAccum))) {
        return true;
    }
    if (a.writesFlag && b.writesFlag)
        return true;

    auto mem_conflict = [](const Effects& w, const Effects& r) {
        if (w.wildWrite && (r.wildRead || r.wildWrite ||
                            !r.memReads.empty() || !r.memWrites.empty())) {
            return true;
        }
        for (const Operand& x : w.memWrites) {
            if (r.wildRead || r.wildWrite)
                return true;
            for (const Operand& y : r.memReads) {
                if (memMayAlias(x, y))
                    return true;
            }
            for (const Operand& y : r.memWrites) {
                if (memMayAlias(x, y))
                    return true;
            }
        }
        return false;
    };
    return mem_conflict(a, b) || mem_conflict(b, a);
}

} // namespace crisp::cc
