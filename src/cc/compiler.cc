/**
 * @file
 * crispcc driver: runs the pipeline and produces a linked Program plus
 * a human-readable listing (the form of the paper's Table 3).
 */

#include "compiler.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "ast.hh"
#include "isa/types.hh"

namespace crisp::cc
{

// Defined in codegen.cc.
CodeList generateCode(
    const TranslationUnit& tu, bool emit_crt0,
    std::map<std::string, std::map<std::int32_t, std::string>>*
        slot_names,
    std::vector<std::pair<std::string, std::vector<std::string>>>*
        jump_tables);

namespace
{

/** Pretty-print one operand with variable names where known. */
std::string
operandText(const Operand& o,
            const std::map<std::int32_t, std::string>* slots,
            const std::map<Addr, std::string>& globals)
{
    switch (o.mode) {
      case AddrMode::kStack:
        if (slots != nullptr) {
            const auto it = slots->find(o.value);
            if (it != slots->end())
                return it->second;
        }
        break;
      case AddrMode::kAbs: {
        const auto it = globals.find(static_cast<Addr>(o.value));
        if (it != globals.end())
            return it->second;
        break;
      }
      case AddrMode::kInd:
        if (slots != nullptr) {
            const auto it = slots->find(o.value);
            if (it != slots->end())
                return "[" + it->second + "]";
        }
        break;
      default:
        break;
    }
    return o.toString();
}

std::string
makeListing(
    const CodeList& code, const TranslationUnit& tu,
    const std::map<std::string, std::map<std::int32_t, std::string>>&
        slot_names,
    const std::map<Addr, std::string>& global_names,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        tables,
    bool has_crt0)
{
    std::ostringstream os;
    std::map<std::int32_t, std::string> filtered;
    const std::map<std::int32_t, std::string>* slots = nullptr;
    std::set<std::string> func_names;
    for (const FuncDecl& f : tu.functions)
        func_names.insert(f.name);

    // Header directives make the listing reassemblable (crispcc -S |
    // crispasm round-trips).
    if (has_crt0)
        os << ".entry _start\n";
    else if (!tu.functions.empty())
        os << ".entry " << tu.functions.front().name << "\n";
    for (const GlobalDecl& g : tu.globals) {
        if (g.arraySize > 0)
            os << ".space " << g.name << " " << g.arraySize << "\n";
        else
            os << ".global " << g.name << " " << g.init << "\n";
    }
    for (const auto& [tname, labels] : tables) {
        os << ".table " << tname;
        for (const std::string& l : labels)
            os << " " << l;
        os << "\n";
    }

    for (const CodeItem& c : code) {
        switch (c.kind) {
          case CodeItem::Kind::kLabel:
            if (func_names.count(c.name)) {
                // Names reused by shadowed declarations would bind
                // ambiguously in the assembler: keep only unique ones.
                filtered.clear();
                const auto it = slot_names.find(c.name);
                if (it != slot_names.end()) {
                    std::map<std::string, int> uses;
                    for (const auto& [slot, name] : it->second)
                        ++uses[name];
                    for (const auto& [slot, name] : it->second) {
                        if (uses[name] == 1)
                            filtered[slot] = name;
                    }
                }
                slots = &filtered;
                os << "\n.clearlocals\n";
                for (const auto& [slot, name] : filtered)
                    os << ".local " << name << " " << slot << "\n";
            }
            os << c.name << ":\n";
            break;
          case CodeItem::Kind::kBranch: {
            os << "    " << opcodeName(c.inst.op);
            if (isConditionalBranch(c.inst.op))
                os << (c.inst.predictTaken ? "y" : "n");
            os << " " << c.name << "\n";
            break;
          }
          case CodeItem::Kind::kInst: {
            const Instruction& in = c.inst;
            if (isBranch(in.op)) { // compiler-generated indirect jump
                os << "    " << in.toString(0) << "\n";
                break;
            }
            os << "    " << opcodeName(in.op);
            switch (in.op) {
              case Opcode::kNop:
              case Opcode::kHalt:
                break;
              case Opcode::kEnter:
              case Opcode::kReturn:
              case Opcode::kLeave:
                os << " " << in.dst.value;
                break;
              default:
                os << " "
                   << operandText(in.dst, slots, global_names) << ","
                   << operandText(in.src, slots, global_names);
                break;
            }
            os << "\n";
            break;
          }
        }
    }
    return os.str();
}

} // namespace

CompileResult
compile(const std::string& source, const CompileOptions& opts)
{
    const TranslationUnit tu = parse(source);

    std::map<std::string, std::map<std::int32_t, std::string>> slot_names;
    std::vector<std::pair<std::string, std::vector<std::string>>> tables;
    CodeList code = generateCode(tu, opts.emitCrt0, &slot_names, &tables);

    std::set<std::string> keep;
    keep.insert("_start");
    for (const FuncDecl& f : tu.functions)
        keep.insert(f.name);
    // Labels reachable only through switch jump tables have no
    // CodeList branch references; protect them from dead-label removal.
    for (const auto& [tname, labels] : tables)
        keep.insert(labels.begin(), labels.end());

    if (opts.peephole)
        passPeephole(code, keep);
    int fully_spread = 0;
    if (opts.spread)
        fully_spread = passSpread(code, opts.spreadDistance);
    if (opts.peephole)
        passPeephole(code, keep);
    passPredictBits(code, opts.predict);
    if (opts.delaySlots || opts.annulSlots) {
        // Last: slots must survive peephole, and annul-filling reuses
        // the just-assigned prediction bits as its taken heuristic.
        passFillDelaySlots(code, opts.annulSlots);
    }

    // Link through the shared AsmBuilder layout engine.
    AsmBuilder builder;
    std::map<Addr, std::string> global_names;
    for (const GlobalDecl& g : tu.globals) {
        if (g.arraySize > 0)
            builder.space(g.name, static_cast<Addr>(g.arraySize));
        else
            builder.global(g.name, g.init);
        global_names[static_cast<Addr>(
            builder.globalOperand(g.name).value)] = g.name;
    }
    // Switch jump tables follow the globals, in creation order (the
    // code generator assigned their addresses on that assumption).
    for (auto& [tname, labels] : tables) {
        builder.labelTable(tname, labels);
        global_names[static_cast<Addr>(
            builder.globalOperand(tname).value)] = tname;
    }
    for (const CodeItem& c : code) {
        switch (c.kind) {
          case CodeItem::Kind::kLabel:
            builder.label(c.name);
            break;
          case CodeItem::Kind::kInst:
            builder.emit(c.inst);
            break;
          case CodeItem::Kind::kBranch:
            builder.branch(c.inst.op, c.name, c.inst.predictTaken);
            break;
        }
    }
    if (opts.emitCrt0)
        builder.entry("_start");
    else if (!tu.functions.empty())
        builder.entry(tu.functions.front().name);

    CompileResult result;
    result.fullySpread = fully_spread;
    result.program = builder.link();
    result.listing = makeListing(code, tu, slot_names, global_names,
                                 tables, opts.emitCrt0);
    result.code = std::move(code);
    return result;
}

} // namespace crisp::cc
