/**
 * @file
 * crispcc driver: runs the pipeline and produces a linked Program plus
 * a human-readable listing (the form of the paper's Table 3).
 *
 * Linking and listing are factored out as free functions over a
 * LinkContext so the dataflow optimizer (analysis/opt.cc) can relink a
 * rewritten CodeList without reparsing the source.
 */

#include "compiler.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "ast.hh"
#include "isa/types.hh"

namespace crisp::cc
{

// Defined in codegen.cc.
CodeList generateCode(
    const TranslationUnit& tu, bool emit_crt0,
    std::map<std::string, std::map<std::int32_t, std::string>>*
        slot_names,
    std::vector<std::pair<std::string, std::vector<std::string>>>*
        jump_tables);

namespace
{

/** Pretty-print one operand with variable names where known. */
std::string
operandText(const Operand& o,
            const std::map<std::int32_t, std::string>* slots,
            const std::map<Addr, std::string>& globals)
{
    switch (o.mode) {
      case AddrMode::kStack:
        if (slots != nullptr) {
            const auto it = slots->find(o.value);
            if (it != slots->end())
                return it->second;
        }
        break;
      case AddrMode::kAbs: {
        const auto it = globals.find(static_cast<Addr>(o.value));
        if (it != globals.end())
            return it->second;
        break;
      }
      case AddrMode::kInd:
        if (slots != nullptr) {
            const auto it = slots->find(o.value);
            if (it != slots->end())
                return "[" + it->second + "]";
        }
        break;
      default:
        break;
    }
    return o.toString();
}

/** Global-name map in the layout linkCode produces (for the listing). */
std::map<Addr, std::string>
globalNameMap(const LinkContext& ctx)
{
    AsmBuilder builder;
    std::map<Addr, std::string> names;
    for (const LinkContext::Global& g : ctx.globals) {
        if (g.arraySize > 0)
            builder.space(g.name, static_cast<Addr>(g.arraySize));
        else
            builder.global(g.name, g.init);
        names[static_cast<Addr>(builder.globalOperand(g.name).value)] =
            g.name;
    }
    for (const auto& [tname, labels] : ctx.tables) {
        builder.labelTable(tname, labels);
        names[static_cast<Addr>(builder.globalOperand(tname).value)] =
            tname;
    }
    return names;
}

} // namespace

Program
linkCode(const CodeList& code, const LinkContext& ctx)
{
    AsmBuilder builder;
    for (const LinkContext::Global& g : ctx.globals) {
        if (g.arraySize > 0)
            builder.space(g.name, static_cast<Addr>(g.arraySize));
        else
            builder.global(g.name, g.init);
    }
    // Switch jump tables follow the globals, in creation order (the
    // code generator assigned their addresses on that assumption).
    for (const auto& [tname, labels] : ctx.tables)
        builder.labelTable(tname, labels);
    for (const CodeItem& c : code) {
        switch (c.kind) {
          case CodeItem::Kind::kLabel:
            builder.label(c.name);
            break;
          case CodeItem::Kind::kInst:
            builder.emit(c.inst);
            break;
          case CodeItem::Kind::kBranch:
            builder.branch(c.inst.op, c.name, c.inst.predictTaken);
            break;
        }
    }
    if (!ctx.entry.empty())
        builder.entry(ctx.entry);
    return builder.link();
}

std::string
makeListing(const CodeList& code, const LinkContext& ctx)
{
    const std::map<Addr, std::string> global_names = globalNameMap(ctx);

    std::ostringstream os;
    std::map<std::int32_t, std::string> filtered;
    const std::map<std::int32_t, std::string>* slots = nullptr;

    // Header directives make the listing reassemblable (crispcc -S |
    // crispasm round-trips).
    if (!ctx.entry.empty())
        os << ".entry " << ctx.entry << "\n";
    for (const LinkContext::Global& g : ctx.globals) {
        if (g.arraySize > 0)
            os << ".space " << g.name << " " << g.arraySize << "\n";
        else
            os << ".global " << g.name << " " << g.init << "\n";
    }
    for (const auto& [tname, labels] : ctx.tables) {
        os << ".table " << tname;
        for (const std::string& l : labels)
            os << " " << l;
        os << "\n";
    }

    for (const CodeItem& c : code) {
        switch (c.kind) {
          case CodeItem::Kind::kLabel:
            if (ctx.funcNames.count(c.name)) {
                // Names reused by shadowed declarations would bind
                // ambiguously in the assembler: keep only unique ones.
                filtered.clear();
                const auto it = ctx.slotNames.find(c.name);
                if (it != ctx.slotNames.end()) {
                    std::map<std::string, int> uses;
                    for (const auto& [slot, name] : it->second)
                        ++uses[name];
                    for (const auto& [slot, name] : it->second) {
                        if (uses[name] == 1)
                            filtered[slot] = name;
                    }
                }
                slots = &filtered;
                os << "\n.clearlocals\n";
                for (const auto& [slot, name] : filtered)
                    os << ".local " << name << " " << slot << "\n";
            }
            os << c.name << ":\n";
            break;
          case CodeItem::Kind::kBranch: {
            os << "    " << opcodeName(c.inst.op);
            if (isConditionalBranch(c.inst.op))
                os << (c.inst.predictTaken ? "y" : "n");
            os << " " << c.name << "\n";
            break;
          }
          case CodeItem::Kind::kInst: {
            const Instruction& in = c.inst;
            if (isBranch(in.op)) { // compiler-generated indirect jump
                os << "    " << in.toString(0) << "\n";
                break;
            }
            os << "    " << opcodeName(in.op);
            switch (in.op) {
              case Opcode::kNop:
              case Opcode::kHalt:
                break;
              case Opcode::kEnter:
              case Opcode::kReturn:
              case Opcode::kLeave:
                os << " " << in.dst.value;
                break;
              default:
                os << " "
                   << operandText(in.dst, slots, global_names) << ","
                   << operandText(in.src, slots, global_names);
                break;
            }
            os << "\n";
            break;
          }
        }
    }
    return os.str();
}

CompileResult
compile(const std::string& source, const CompileOptions& opts)
{
    const TranslationUnit tu = parse(source);

    LinkContext ctx;
    ctx.hasCrt0 = opts.emitCrt0;
    CodeList code =
        generateCode(tu, opts.emitCrt0, &ctx.slotNames, &ctx.tables);
    for (const GlobalDecl& g : tu.globals)
        ctx.globals.push_back({g.name, g.init, g.arraySize});
    for (const FuncDecl& f : tu.functions)
        ctx.funcNames.insert(f.name);
    if (opts.emitCrt0)
        ctx.entry = "_start";
    else if (!tu.functions.empty())
        ctx.entry = tu.functions.front().name;

    ctx.keepLabels = ctx.funcNames;
    ctx.keepLabels.insert("_start");
    // Labels reachable only through switch jump tables have no
    // CodeList branch references; protect them from dead-label removal.
    for (const auto& [tname, labels] : ctx.tables)
        ctx.keepLabels.insert(labels.begin(), labels.end());

    if (opts.peephole)
        passPeephole(code, ctx.keepLabels);
    int fully_spread = 0;
    if (opts.spread)
        fully_spread = passSpread(code, opts.spreadDistance);
    if (opts.peephole)
        passPeephole(code, ctx.keepLabels);
    passPredictBits(code, opts.predict);
    if (opts.delaySlots || opts.annulSlots) {
        // Last: slots must survive peephole, and annul-filling reuses
        // the just-assigned prediction bits as its taken heuristic.
        passFillDelaySlots(code, opts.annulSlots);
    }

    CompileResult result;
    result.fullySpread = fully_spread;
    result.program = linkCode(code, ctx);
    result.listing = makeListing(code, ctx);
    result.code = std::move(code);
    result.link = std::move(ctx);
    return result;
}

} // namespace crisp::cc
