/**
 * @file
 * Lexer for CRISP-C, the small C subset compiled by crispcc.
 */

#ifndef CRISP_CC_LEXER_HH
#define CRISP_CC_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace crisp::cc
{

enum class Tok : std::uint8_t {
    kEof = 0,
    kIdent,
    kNumber,
    // keywords
    kInt,
    kVoid,
    kIf,
    kElse,
    kWhile,
    kFor,
    kDo,
    kReturn,
    kBreak,
    kContinue,
    kSwitch,
    kCase,
    kDefault,
    // punctuation / operators
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kSemi, kComma, kQuestion, kColon,
    kAssign,            // =
    kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
    kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
    kPlusPlus, kMinusMinus,
    kPlus, kMinus, kStar, kSlash, kPercent,
    kAmp, kPipe, kCaret, kTilde, kBang,
    kAmpAmp, kPipePipe,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kShl, kShr,
};

struct Token
{
    Tok kind = Tok::kEof;
    std::string text;
    std::int32_t value = 0; // for kNumber
    int line = 1;
};

/** Tokenize @p source. @throws CrispError on bad input. */
std::vector<Token> lex(const std::string& source);

/** Human-readable token kind name (for diagnostics). */
const char* tokName(Tok t);

} // namespace crisp::cc

#endif // CRISP_CC_LEXER_HH
