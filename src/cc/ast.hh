/**
 * @file
 * Abstract syntax tree for CRISP-C.
 *
 * The language is the C subset needed to express the paper's workloads:
 * 32-bit ints, global scalars and arrays, functions with parameters and
 * locals, the usual statements and operators. (Local arrays and
 * general pointers are not supported: the ISA has no address-of-SP
 * operation, matching the era's global-heavy benchmark style.)
 */

#ifndef CRISP_CC_AST_HH
#define CRISP_CC_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace crisp::cc
{

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
    kNumber,     //!< integer literal
    kVar,        //!< scalar variable reference
    kIndex,      //!< array[expr]
    kUnary,      //!< -x  !x  ~x
    kBinary,     //!< arithmetic / bitwise / relational / logical
    kAssign,     //!< lvalue OP= expr (op == kNone for plain '=')
    kPreIncDec,  //!< ++x / --x
    kPostIncDec, //!< x++ / x--
    kCall,       //!< f(args)
    kTernary,    //!< cond ? a : b
};

/** Binary/compound-assign operator. */
enum class BinOp : std::uint8_t {
    kNone,
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kLAnd, kLOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot, kBitNot };

struct Expr
{
    ExprKind kind = ExprKind::kNumber;
    int line = 0;

    std::int32_t number = 0;          // kNumber
    std::string name;                 // kVar / kIndex / kCall
    UnOp unop = UnOp::kNeg;           // kUnary
    BinOp binop = BinOp::kNone;       // kBinary / kAssign
    bool increment = true;            // k{Pre,Post}IncDec
    ExprPtr lhs;                      // kBinary/kAssign lhs, kUnary/kIndex
    ExprPtr rhs;                      // kBinary/kAssign rhs, index expr
    ExprPtr third;                    // kTernary else-arm (lhs=cond, rhs=then)
    std::vector<ExprPtr> args;        // kCall
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
    kExpr,
    kDecl,      //!< int x [= init];  (one per declarator)
    kIf,
    kWhile,
    kDoWhile,
    kFor,
    kReturn,
    kBreak,
    kContinue,
    kBlock,
    kEmpty,
    kSwitch,     //!< switch over stmts containing kCaseLabel markers
    kCaseLabel,  //!< `case N:` (expr holds N) or `default:` (no expr)
};

struct Stmt
{
    StmtKind kind = StmtKind::kEmpty;
    int line = 0;

    ExprPtr expr;               // kExpr / kReturn value / conditions
    std::string name;           // kDecl variable name
    ExprPtr init;               // kDecl initializer, kFor init-expr
    ExprPtr cond;               // kIf/kWhile/kDoWhile/kFor condition
    ExprPtr step;               // kFor step
    StmtPtr initStmt;           // kFor init when it is a declaration
    StmtPtr body;               // loop body / if-then
    StmtPtr elseBody;           // if-else
    std::vector<StmtPtr> stmts; // kBlock
};

struct FuncDecl
{
    std::string name;
    std::vector<std::string> params;
    StmtPtr body;
    bool returnsValue = true; // int vs void
    int line = 0;
};

struct GlobalDecl
{
    std::string name;
    std::int32_t init = 0;
    std::int32_t arraySize = 0; //!< 0 = scalar
    int line = 0;
};

struct TranslationUnit
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

/** Parse a CRISP-C source file. @throws CrispError on syntax errors. */
TranslationUnit parse(const std::string& source);

} // namespace crisp::cc

#endif // CRISP_CC_AST_HH
