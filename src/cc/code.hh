/**
 * @file
 * Linear code representation produced by the crispcc code generator and
 * transformed by the optimization passes (prediction bits, branch
 * spreading, peephole) before assembly.
 */

#ifndef CRISP_CC_CODE_HH
#define CRISP_CC_CODE_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace crisp::cc
{

struct CodeItem
{
    enum class Kind { kLabel, kInst, kBranch };

    Kind kind = Kind::kInst;
    /** Label name (kLabel) or branch target label (kBranch). */
    std::string name;
    /** Instruction payload; for kBranch only op and predictTaken are
     *  meaningful (the displacement is resolved at link time). */
    Instruction inst;
    /**
     * Branch Spreading claims this conditional branch is fully spread
     * (kBranch only; set by passSpread, audited by crispcc --verify
     * against the static analyzer).
     */
    bool spreadClaim = false;
    /** Issue-slot separation passSpread achieved for this branch. */
    int spreadSep = 0;
    /**
     * Stable identity for the translation validator: the optimizer
     * driver tags every conditional branch before running any rewrite
     * pass, and tags surviving in both the baseline and the optimized
     * CodeList become matched TV site pairs. -1 = untagged.
     */
    int siteId = -1;
    /**
     * Liveness proved the condition flag this compare writes is never
     * read before being overwritten (kInst compares only; set by the
     * optimizer driver). Deleting it could reshape fold carriers, so
     * it stays put, but branch-spreading code motion may treat the
     * flag write as a non-event and sink candidates across it.
     */
    bool ccDead = false;

    static CodeItem
    label(std::string n)
    {
        CodeItem c;
        c.kind = Kind::kLabel;
        c.name = std::move(n);
        return c;
    }

    static CodeItem
    instr(const Instruction& i)
    {
        CodeItem c;
        c.kind = Kind::kInst;
        c.inst = i;
        return c;
    }

    static CodeItem
    branch(Opcode op, std::string target, bool predict = false)
    {
        CodeItem c;
        c.kind = Kind::kBranch;
        c.name = std::move(target);
        c.inst.op = op;
        c.inst.predictTaken = predict;
        return c;
    }

    bool isCondBranch() const
    {
        return kind == Kind::kBranch && isConditionalBranch(inst.op);
    }
};

using CodeList = std::vector<CodeItem>;

/**
 * Read/write effects of one instruction, for the dependence checks of
 * the branch-spreading code-motion pass.
 */
struct Effects
{
    bool readsAccum = false;
    bool writesAccum = false;
    bool writesFlag = false;
    /** enter/leave/call/return/halt: a scheduling barrier. */
    bool barrier = false;
    /** Any indirect access: alias-conservative wildcards. */
    bool wildRead = false;
    bool wildWrite = false;
    std::vector<Operand> memReads;
    std::vector<Operand> memWrites;
};

/** Extract the effects of a non-branch instruction. */
Effects effectsOf(const Instruction& inst);

/** May the two memory operands name the same location? */
bool memMayAlias(const Operand& a, const Operand& b);

/** Is it unsafe to reorder @p first and @p second (in either order)? */
bool conflicts(const Effects& a, const Effects& b);

} // namespace crisp::cc

#endif // CRISP_CC_CODE_HH
