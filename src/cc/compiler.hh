/**
 * @file
 * crispcc: the CRISP-C compiler driver.
 *
 * Pipeline: lex -> parse -> code generation (CodeList) -> optimization
 * passes (peephole, branch prediction bits, Branch Spreading) ->
 * AsmBuilder link -> Program.
 *
 * The two compiler techniques from the paper are both here:
 *  - the static branch prediction bit, set by a backward-taken /
 *    forward-not-taken heuristic (or left all-not-taken, Table 4 case A
 *    vs B);
 *  - Branch Spreading: code motion that separates a compare from its
 *    conditional branch so the branch outcome is known at issue.
 */

#ifndef CRISP_CC_COMPILER_HH
#define CRISP_CC_COMPILER_HH

#include <map>
#include <set>
#include <string>

#include "code.hh"
#include "isa/program.hh"

namespace crisp::cc
{

/** How the compiler sets static prediction bits. */
enum class PredictMode
{
    /** Leave every bit "not taken" (Table 4 cases A). */
    kAllNotTaken,
    /** Backward branches predicted taken, forward not taken. */
    kBackwardTaken,
};

struct CompileOptions
{
    /** Run the Branch Spreading code-motion pass. */
    bool spread = true;
    PredictMode predict = PredictMode::kBackwardTaken;
    /** Small cleanups (jump-to-next removal, mov x,x). */
    bool peephole = true;
    /** Emit the `_start: call main; halt` runtime stub as the entry. */
    bool emitCrt0 = true;
    /**
     * Target the delayed-branch baseline machine: insert one delay
     * slot (a useful instruction when possible, otherwise a nop) after
     * every jmp/iftjmp/iffjmp. Such programs run on DelayedBranchCpu,
     * not on the CRISP pipeline.
     */
    bool delaySlots = false;

    /**
     * With delaySlots: also fill the slots of predicted-taken
     * conditional branches from the branch *target*, marking them
     * annul-if-not-taken (McFarling & Hennessy's "squashing" delayed
     * branch; MIPS-II branch-likely). On such programs the prediction
     * bit of a conditional branch means "the slot executes only when
     * the branch takes"; run them with DelayedBranchCpu(prog, true).
     */
    bool annulSlots = false;
    /**
     * Minimum issue-slot separation Branch Spreading aims for between a
     * compare and its conditional branch. Three non-branch instructions
     * between them guarantee the compare has left the EU pipeline.
     */
    int spreadDistance = 3;
};

/**
 * Everything the linker and listing writer need besides the CodeList
 * itself. compile() fills one in and carries it on the CompileResult so
 * later rewrite passes (the dataflow optimizer) can relink a modified
 * CodeList without reparsing the source.
 */
struct LinkContext
{
    struct Global
    {
        std::string name;
        std::int32_t init = 0;
        /** Nonzero: a .space array of this many words. */
        int arraySize = 0;
    };

    /** Globals in declaration order (layout is order-dependent). */
    std::vector<Global> globals;
    /** Switch jump tables in creation order (same reason). */
    std::vector<std::pair<std::string, std::vector<std::string>>> tables;
    /** Per-function slot -> variable name, for the listing. */
    std::map<std::string, std::map<std::int32_t, std::string>> slotNames;
    /** Function entry labels (listing section breaks + keep set). */
    std::set<std::string> funcNames;
    /** Labels dead-label removal must preserve. */
    std::set<std::string> keepLabels;
    /** Entry label ("_start" with crt0, else the first function). */
    std::string entry;
    bool hasCrt0 = true;
};

/** Link @p code through the AsmBuilder layout engine. */
Program linkCode(const CodeList& code, const LinkContext& ctx);

/** Pretty listing with variable names (the paper's Table 3 form). */
std::string makeListing(const CodeList& code, const LinkContext& ctx);

struct CompileResult
{
    Program program;
    /** Post-pass linear code (for inspection and unit tests). */
    CodeList code;
    /** Pretty listing with variable names (the paper's Table 3 form). */
    std::string listing;
    /** Relink inputs for downstream rewrite passes. */
    LinkContext link;
    /**
     * Branch Spreading's claim: originally-adjacent compare/branch
     * pairs that reached the requested separation. The claimed branch
     * items carry CodeItem::spreadClaim; crispcc --verify audits both
     * against the static analyzer.
     */
    int fullySpread = 0;
};

/**
 * Compile a CRISP-C translation unit.
 * @throws CrispError on lexical, syntax or semantic errors.
 */
CompileResult compile(const std::string& source,
                      const CompileOptions& opts = {});

// Individual passes, exposed for unit testing ------------------------

/** Set conditional-branch prediction bits. */
void passPredictBits(CodeList& code, PredictMode mode);

/** Branch Spreading code motion. @return branches fully spread. */
int passSpread(CodeList& code, int distance);

/**
 * Branch Spreading, generalized for a second run after the dataflow
 * rewrite passes: handles compare/branch pairs that are no longer
 * adjacent (passSpread only considers adjacent ones) and sinks
 * candidates across compares marked CodeItem::ccDead. Re-tags
 * spreadClaim/spreadSep on every conditional branch it inspects.
 * @return the total number of fully-spread conditional branches
 * afterwards (the new CompileResult::fullySpread).
 */
int passRespread(CodeList& code, int distance);

/**
 * Peephole cleanups: jump-to-next removal, mov x,x removal, and removal
 * of unreferenced labels (except those in @p keep_labels, e.g. function
 * entry points). @return items removed.
 */
int passPeephole(CodeList& code,
                 const std::set<std::string>& keep_labels = {});

/**
 * Insert (and where possible usefully fill) one delay slot after every
 * jmp/iftjmp/iffjmp, for the delayed-branch baseline machine. With
 * @p annul, predicted-taken conditional branches may instead take the
 * first instruction of their target (annul-if-not-taken semantics);
 * their prediction bit is then repurposed as the annul marker.
 * @return the number of slots filled with useful instructions.
 */
int passFillDelaySlots(CodeList& code, bool annul = false);

// Dataflow-driven rewrite passes. All three are keyed by *non-label
// item ordinal*: the optimizer driver derives facts from the analyzer
// (pc-keyed) and maps them through the 1:1 pairing between non-label
// CodeItems and the binary's linear decode (the same pairing crispcc
// --verify audits). Every pass erases/rewrites in descending ordinal
// order, so a plan computed against one linked layout stays valid
// while the pass itself mutates the list.

/**
 * Rewrite conditional branches whose direction SCCP proved constant:
 * always-taken becomes an unconditional jmp to the same target,
 * never-taken is erased. @p directions maps ordinal -> alwaysTaken.
 * @return branches rewritten or erased.
 */
int passConstFold(CodeList& code,
                  const std::map<std::size_t, bool>& directions);

/** What passDCE should remove or downgrade, by non-label ordinal. */
struct DcePlan
{
    /**
     * Dead definitions (stores and accumulator writes no path
     * observes). Deleted unless sitting inside a compare->branch
     * spread window, where removal would shrink the separation the
     * spreader earned.
     */
    std::set<std::size_t> dead;
    /** Dead compares: marked CodeItem::ccDead, never deleted. */
    std::set<std::size_t> ccDead;
    /** Issue points SCCP proved unexecutable: always deleted. */
    std::set<std::size_t> unreachable;
};

/** Dead-code elimination. @return items deleted. */
int passDCE(CodeList& code, const DcePlan& plan);

/** One operand rewrite for passCopyProp. */
struct ConstOperand
{
    std::size_t ordinal = 0; //!< non-label item to rewrite
    bool dstOperand = false; //!< rewrite inst.dst (else inst.src)
    std::int32_t value = 0;  //!< proven immediate
};

/**
 * Rewrite read-only operands proven equal to an immediate. Skips a
 * rewrite when it would grow a fold carrier (the instruction feeding a
 * conditional branch) past 3 parcels, which would cost the branch its
 * carrier. @return operands rewritten.
 */
int passCopyProp(CodeList& code, const std::vector<ConstOperand>& uses);

/** One indirect-branch devirtualization for passDevirt. */
struct DevirtSite
{
    std::size_t ordinal = 0; //!< non-label item: the indirect jump
    std::string target;      //!< label naming the unique proven target
};

/**
 * Rewrite indirect jumps whose target set the interprocedural target
 * analysis proved to be a single text address into direct label
 * branches. A devirtualized jump folds like any direct jmp (its 2-cycle
 * retirement-read bubble disappears), and the orphaned table-address
 * computation upstream goes dead for the DCE rounds to collect. The
 * range-guard branch ahead of a dense-switch dispatch is left alone:
 * when it is live it still routes out-of-range selectors to the
 * default arm. @return sites rewritten.
 */
int passDevirt(CodeList& code, const std::vector<DevirtSite>& sites);

} // namespace crisp::cc

#endif // CRISP_CC_COMPILER_HH
