/**
 * @file
 * crispcc: the CRISP-C compiler driver.
 *
 * Pipeline: lex -> parse -> code generation (CodeList) -> optimization
 * passes (peephole, branch prediction bits, Branch Spreading) ->
 * AsmBuilder link -> Program.
 *
 * The two compiler techniques from the paper are both here:
 *  - the static branch prediction bit, set by a backward-taken /
 *    forward-not-taken heuristic (or left all-not-taken, Table 4 case A
 *    vs B);
 *  - Branch Spreading: code motion that separates a compare from its
 *    conditional branch so the branch outcome is known at issue.
 */

#ifndef CRISP_CC_COMPILER_HH
#define CRISP_CC_COMPILER_HH

#include <map>
#include <set>
#include <string>

#include "code.hh"
#include "isa/program.hh"

namespace crisp::cc
{

/** How the compiler sets static prediction bits. */
enum class PredictMode
{
    /** Leave every bit "not taken" (Table 4 cases A). */
    kAllNotTaken,
    /** Backward branches predicted taken, forward not taken. */
    kBackwardTaken,
};

struct CompileOptions
{
    /** Run the Branch Spreading code-motion pass. */
    bool spread = true;
    PredictMode predict = PredictMode::kBackwardTaken;
    /** Small cleanups (jump-to-next removal, mov x,x). */
    bool peephole = true;
    /** Emit the `_start: call main; halt` runtime stub as the entry. */
    bool emitCrt0 = true;
    /**
     * Target the delayed-branch baseline machine: insert one delay
     * slot (a useful instruction when possible, otherwise a nop) after
     * every jmp/iftjmp/iffjmp. Such programs run on DelayedBranchCpu,
     * not on the CRISP pipeline.
     */
    bool delaySlots = false;

    /**
     * With delaySlots: also fill the slots of predicted-taken
     * conditional branches from the branch *target*, marking them
     * annul-if-not-taken (McFarling & Hennessy's "squashing" delayed
     * branch; MIPS-II branch-likely). On such programs the prediction
     * bit of a conditional branch means "the slot executes only when
     * the branch takes"; run them with DelayedBranchCpu(prog, true).
     */
    bool annulSlots = false;
    /**
     * Minimum issue-slot separation Branch Spreading aims for between a
     * compare and its conditional branch. Three non-branch instructions
     * between them guarantee the compare has left the EU pipeline.
     */
    int spreadDistance = 3;
};

struct CompileResult
{
    Program program;
    /** Post-pass linear code (for inspection and unit tests). */
    CodeList code;
    /** Pretty listing with variable names (the paper's Table 3 form). */
    std::string listing;
    /**
     * Branch Spreading's claim: originally-adjacent compare/branch
     * pairs that reached the requested separation. The claimed branch
     * items carry CodeItem::spreadClaim; crispcc --verify audits both
     * against the static analyzer.
     */
    int fullySpread = 0;
};

/**
 * Compile a CRISP-C translation unit.
 * @throws CrispError on lexical, syntax or semantic errors.
 */
CompileResult compile(const std::string& source,
                      const CompileOptions& opts = {});

// Individual passes, exposed for unit testing ------------------------

/** Set conditional-branch prediction bits. */
void passPredictBits(CodeList& code, PredictMode mode);

/** Branch Spreading code motion. @return branches fully spread. */
int passSpread(CodeList& code, int distance);

/**
 * Peephole cleanups: jump-to-next removal, mov x,x removal, and removal
 * of unreferenced labels (except those in @p keep_labels, e.g. function
 * entry points). @return items removed.
 */
int passPeephole(CodeList& code,
                 const std::set<std::string>& keep_labels = {});

/**
 * Insert (and where possible usefully fill) one delay slot after every
 * jmp/iftjmp/iffjmp, for the delayed-branch baseline machine. With
 * @p annul, predicted-taken conditional branches may instead take the
 * first instruction of their target (annul-if-not-taken semantics);
 * their prediction bit is then repurposed as the annul marker.
 * @return the number of slots filled with useful instructions.
 */
int passFillDelaySlots(CodeList& code, bool annul = false);

} // namespace crisp::cc

#endif // CRISP_CC_COMPILER_HH
