/**
 * @file
 * Parcel-level instruction codec.
 */

#include "encoding.hh"

#include <sstream>

namespace crisp
{

namespace
{

constexpr int kModeNone = 0;
constexpr int kModeStack = 1;
constexpr int kModeAbs = 2;
constexpr int kModeImm = 3;
constexpr int kModeInd = 4;
constexpr int kModeAccum = 5;

int
modeBits(AddrMode m)
{
    switch (m) {
      case AddrMode::kNone:  return kModeNone;
      case AddrMode::kStack: return kModeStack;
      case AddrMode::kAbs:   return kModeAbs;
      case AddrMode::kImm:   return kModeImm;
      case AddrMode::kInd:   return kModeInd;
      case AddrMode::kAccum: return kModeAccum;
    }
    throw CrispError("modeBits: bad addressing mode");
}

AddrMode
bitsMode(int bits)
{
    switch (bits) {
      case kModeNone:  return AddrMode::kNone;
      case kModeStack: return AddrMode::kStack;
      case kModeAbs:   return AddrMode::kAbs;
      case kModeImm:   return AddrMode::kImm;
      case kModeInd:   return AddrMode::kInd;
      case kModeAccum: return AddrMode::kAccum;
      default:
        throw CrispError("bitsMode: bad mode encoding");
    }
}

/** Specifier value as stored in a 16-bit parcel. */
Parcel
spec16(const Operand& o)
{
    return static_cast<Parcel>(static_cast<std::uint32_t>(o.value));
}

/** Reconstruct an operand from a 16-bit specifier. */
std::int32_t
unspec16(AddrMode m, Parcel p)
{
    if (m == AddrMode::kAbs)
        return static_cast<std::int32_t>(p);
    return signExtend(p, 16);
}

int
branchModeBits(BranchMode m)
{
    switch (m) {
      case BranchMode::kAbs:    return 0;
      case BranchMode::kIndAbs: return 1;
      case BranchMode::kIndSp:  return 2;
      case BranchMode::kPcRel:
        throw CrispError("PC-relative branch has no long encoding");
    }
    throw CrispError("branchModeBits: bad branch mode");
}

BranchMode
bitsBranchMode(int bits)
{
    switch (bits) {
      case 0: return BranchMode::kAbs;
      case 1: return BranchMode::kIndAbs;
      case 2: return BranchMode::kIndSp;
      default:
        throw CrispError("bitsBranchMode: bad branch mode encoding");
    }
}

/** a-field value for a one-parcel operand. */
int
shortA(const Operand& o)
{
    if (o.mode == AddrMode::kAccum)
        return 31;
    if (o.mode == AddrMode::kStack)
        return o.value;
    return 0; // kNone
}

/** b-field and immediate flag for a one-parcel operand. */
std::pair<int, int>
shortB(const Operand& o)
{
    if (o.mode == AddrMode::kImm)
        return {o.value, 1};
    if (o.mode == AddrMode::kAccum)
        return {7, 0};
    if (o.mode == AddrMode::kStack)
        return {o.value, 0};
    return {0, 0}; // kNone
}

Operand
unshortA(int a)
{
    return a == 31 ? Operand::accum() : Operand::stack(a);
}

Operand
unshortB(int b, int m)
{
    if (m)
        return Operand::imm(b);
    return b == 7 ? Operand::accum() : Operand::stack(b);
}

} // namespace

int
encode(const Instruction& inst, Parcel* out)
{
    const int len = inst.lengthParcels();
    const auto opbits = static_cast<Parcel>(inst.op);

    switch (inst.op) {
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
        if (inst.bmode == BranchMode::kPcRel) {
            if (!fitsShortBranch(inst.disp)) {
                throw CrispError("branch displacement out of range: " +
                                 std::to_string(inst.disp));
            }
            Parcel major = kMajorJmp;
            if (inst.op == Opcode::kIfTJmp)
                major = kMajorIfT;
            else if (inst.op == Opcode::kIfFJmp)
                major = kMajorIfF;
            const auto words =
                static_cast<std::uint32_t>(inst.disp / 2) & 0x3FFu;
            out[0] = static_cast<Parcel>(
                (major << 12) | (inst.predictTaken ? (1u << 11) : 0u) |
                words);
            return 1;
        }
        [[fallthrough]];
      case Opcode::kCall: {
        // Three-parcel branch.
        out[0] = static_cast<Parcel>(
            (opbits << 10) | (1u << 9) |
            (inst.predictTaken ? (1u << 8) : 0u) |
            (branchModeBits(inst.bmode) << 6));
        out[1] = static_cast<Parcel>(inst.spec & 0xFFFF);
        out[2] = static_cast<Parcel>(inst.spec >> 16);
        return 3;
      }
      case Opcode::kNop:
      case Opcode::kHalt:
        out[0] = static_cast<Parcel>(opbits << 10);
        return 1;
      case Opcode::kEnter:
      case Opcode::kReturn:
      case Opcode::kLeave: {
        const std::int32_t words = inst.dst.value;
        if (words < 0 || words > 511)
            throw CrispError("enter/return frame size out of range");
        out[0] = static_cast<Parcel>((opbits << 10) | words);
        return 1;
      }
      default:
        break;
    }

    if (len == 1) {
        const auto [b, m] = shortB(inst.src);
        out[0] = static_cast<Parcel>(
            (opbits << 10) | (shortA(inst.dst) << 4) | (b << 1) | m);
        return 1;
    }

    const bool wide = len == 5;
    out[0] = static_cast<Parcel>(
        (opbits << 10) | (1u << 9) | (wide ? (1u << 8) : 0u) |
        (modeBits(inst.dst.mode) << 5) | (modeBits(inst.src.mode) << 2));
    if (!wide) {
        out[1] = spec16(inst.dst);
        out[2] = spec16(inst.src);
        return 3;
    }
    const auto d = static_cast<std::uint32_t>(inst.dst.value);
    const auto s = static_cast<std::uint32_t>(inst.src.value);
    out[1] = static_cast<Parcel>(d & 0xFFFF);
    out[2] = static_cast<Parcel>(d >> 16);
    out[3] = static_cast<Parcel>(s & 0xFFFF);
    out[4] = static_cast<Parcel>(s >> 16);
    return 5;
}

int
encodeAppend(const Instruction& inst, std::vector<Parcel>& image)
{
    Parcel buf[kMaxParcels];
    const int n = encode(inst, buf);
    image.insert(image.end(), buf, buf + n);
    return n;
}

Instruction
decode(const Parcel* parcels)
{
    const Parcel p0 = parcels[0];
    const int major = p0 >> 12;

    if (major == kMajorJmp || major == kMajorIfT || major == kMajorIfF) {
        Opcode op = Opcode::kJmp;
        if (major == kMajorIfT)
            op = Opcode::kIfTJmp;
        else if (major == kMajorIfF)
            op = Opcode::kIfFJmp;
        const bool pred = (p0 >> 11) & 1;
        const std::int32_t disp = signExtend(p0 & 0x3FFu, 10) * 2;
        return Instruction::branchRel(op, disp, pred);
    }

    const auto op = static_cast<Opcode>(p0 >> 10);
    if (static_cast<int>(op) >= kOpcodeCount)
        throw CrispError("decode: bad opcode");

    if (isBranch(op)) {
        const bool pred = (p0 >> 8) & 1;
        const BranchMode bmode = bitsBranchMode((p0 >> 6) & 3);
        const std::uint32_t spec =
            static_cast<std::uint32_t>(parcels[1]) |
            (static_cast<std::uint32_t>(parcels[2]) << 16);
        return Instruction::branchFar(op, bmode, spec, pred);
    }

    if (op == Opcode::kNop)
        return Instruction::nop();
    if (op == Opcode::kHalt)
        return Instruction::halt();
    if (op == Opcode::kEnter)
        return Instruction::enter(p0 & 0x1FF);
    if (op == Opcode::kReturn)
        return Instruction::ret(p0 & 0x1FF);
    if (op == Opcode::kLeave)
        return Instruction::leave(p0 & 0x1FF);

    const bool long_form = (p0 >> 9) & 1;
    if (!long_form) {
        const int a = (p0 >> 4) & 0x1F;
        const int b = (p0 >> 1) & 0x7;
        const int m = p0 & 1;
        return Instruction::alu(op, unshortA(a), unshortB(b, m));
    }

    const bool wide = (p0 >> 8) & 1;
    const AddrMode dm = bitsMode((p0 >> 5) & 7);
    const AddrMode sm = bitsMode((p0 >> 2) & 7);
    Operand dst, src;
    dst.mode = dm;
    src.mode = sm;
    if (!wide) {
        dst.value = unspec16(dm, parcels[1]);
        src.value = unspec16(sm, parcels[2]);
    } else {
        dst.value = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(parcels[1]) |
            (static_cast<std::uint32_t>(parcels[2]) << 16));
        src.value = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(parcels[3]) |
            (static_cast<std::uint32_t>(parcels[4]) << 16));
    }
    if (dm == AddrMode::kNone)
        dst.value = 0;
    if (sm == AddrMode::kNone)
        src.value = 0;
    return Instruction::alu(op, dst, src);
}

} // namespace crisp
