/**
 * @file
 * Program image utilities: disassembly and static statistics.
 */

#include "program.hh"

#include <iomanip>
#include <sstream>

namespace crisp
{

std::string
Program::disassemble() const
{
    std::ostringstream os;
    // Invert the symbol map for label annotation.
    std::map<Addr, std::string> labels;
    for (const auto& [name, sym] : symbols) {
        if (sym.kind == Symbol::Kind::kLabel)
            labels[sym.value] = name;
    }

    Addr pc = textBase;
    while (pc < textEnd()) {
        const auto it = labels.find(pc);
        if (it != labels.end())
            os << it->second << ":\n";
        const Instruction inst = fetch(pc);
        os << "  0x" << std::hex << std::setw(5) << std::setfill('0')
           << pc << std::dec << ":  " << inst.toString(pc) << "\n";
        pc += inst.lengthBytes();
    }
    return os.str();
}

int
Program::staticInstructionCount() const
{
    int n = 0;
    Addr pc = textBase;
    while (pc < textEnd()) {
        pc += static_cast<Addr>(instructionLength(parcelAt(pc))) *
              kParcelBytes;
        ++n;
    }
    return n;
}

std::map<int, int>
Program::staticLengthHistogram() const
{
    std::map<int, int> hist;
    Addr pc = textBase;
    while (pc < textEnd()) {
        const int len = instructionLength(parcelAt(pc));
        ++hist[len];
        pc += static_cast<Addr>(len) * kParcelBytes;
    }
    return hist;
}

} // namespace crisp
