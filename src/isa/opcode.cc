/**
 * @file
 * Opcode property tables and ALU/compare evaluation.
 */

#include "opcode.hh"

#include <array>

#include "types.hh"

namespace crisp
{

namespace
{

constexpr std::array<std::string_view, kOpcodeCount> kNames = {
    "nop",   "halt",
    "add",   "sub",   "and",   "or",    "xor",
    "shl",   "shr",   "mul",   "div",   "rem",
    "add3",  "sub3",  "and3",  "or3",   "xor3",  "mul3",
    "mov",
    "cmp.=", "cmp.!=",
    "cmp.s<", "cmp.s<=", "cmp.s>", "cmp.s>=",
    "cmp.u<", "cmp.u>=",
    "jmp",   "iftjmp", "iffjmp", "call", "enter", "return",
    "leave",
};

} // namespace

std::string_view
opcodeName(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= kNames.size())
        return "<bad-opcode>";
    return kNames[idx];
}

} // namespace crisp
