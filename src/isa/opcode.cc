/**
 * @file
 * Opcode property tables and ALU/compare evaluation.
 */

#include "opcode.hh"

#include <array>

#include "types.hh"

namespace crisp
{

namespace
{

constexpr std::array<std::string_view, kOpcodeCount> kNames = {
    "nop",   "halt",
    "add",   "sub",   "and",   "or",    "xor",
    "shl",   "shr",   "mul",   "div",   "rem",
    "add3",  "sub3",  "and3",  "or3",   "xor3",  "mul3",
    "mov",
    "cmp.=", "cmp.!=",
    "cmp.s<", "cmp.s<=", "cmp.s>", "cmp.s>=",
    "cmp.u<", "cmp.u>=",
    "jmp",   "iftjmp", "iffjmp", "call", "enter", "return",
    "leave",
};

} // namespace

std::string_view
opcodeName(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= kNames.size())
        return "<bad-opcode>";
    return kNames[idx];
}

bool
evalCompare(Opcode op, std::int32_t a, std::int32_t b)
{
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case Opcode::kCmpEq:  return a == b;
      case Opcode::kCmpNe:  return a != b;
      case Opcode::kCmpLt:  return a < b;
      case Opcode::kCmpLe:  return a <= b;
      case Opcode::kCmpGt:  return a > b;
      case Opcode::kCmpGe:  return a >= b;
      case Opcode::kCmpLtU: return ua < ub;
      case Opcode::kCmpGeU: return ua >= ub;
      default:
        throw CrispError("evalCompare: not a compare opcode");
    }
}

std::int32_t
evalAlu(Opcode op, std::int32_t a, std::int32_t b)
{
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case Opcode::kAdd: case Opcode::kAdd3:
        return static_cast<std::int32_t>(ua + ub);
      case Opcode::kSub: case Opcode::kSub3:
        return static_cast<std::int32_t>(ua - ub);
      case Opcode::kAnd: case Opcode::kAnd3:
        return a & b;
      case Opcode::kOr: case Opcode::kOr3:
        return a | b;
      case Opcode::kXor: case Opcode::kXor3:
        return a ^ b;
      case Opcode::kShl:
        return static_cast<std::int32_t>(ua << (ub & 31u));
      case Opcode::kShr:
        return static_cast<std::int32_t>(ua >> (ub & 31u));
      case Opcode::kMul: case Opcode::kMul3:
        return static_cast<std::int32_t>(ua * ub);
      case Opcode::kDiv:
        return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? a : a / b);
      case Opcode::kRem:
        return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? 0 : a % b);
      case Opcode::kMov:
        return b;
      default:
        throw CrispError("evalAlu: not an ALU opcode");
    }
}

} // namespace crisp
