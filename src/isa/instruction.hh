/**
 * @file
 * Architectural instruction representation.
 *
 * An Instruction is the assembler-level view of one CRISP instruction,
 * independent of its binary encoding. Instructions are encoded into one,
 * three or five 16-bit parcels (see encoding.hh); the encoded length is a
 * pure function of the operand shapes, mirroring the paper's three
 * instruction lengths.
 */

#ifndef CRISP_ISA_INSTRUCTION_HH
#define CRISP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "opcode.hh"
#include "operand.hh"
#include "types.hh"

namespace crisp
{

/** How a branch names its target. */
enum class BranchMode : std::uint8_t {
    kPcRel = 0,  //!< one-parcel form: 10-bit word offset from the branch
    kAbs,        //!< three-parcel form: 32-bit absolute target
    kIndAbs,     //!< indirect through an absolute address
    kIndSp,      //!< indirect through SP + 32-bit word offset
};

/** Architectural (pre-encoding, pre-folding) instruction. */
struct Instruction
{
    Opcode op = Opcode::kNop;

    /** Destination (ALU2/mov) or first source (cmp, ALU3). */
    Operand dst;
    /** Source (ALU2/mov) or second source (cmp, ALU3). */
    Operand src;

    /** Static branch prediction bit (conditional branches only). */
    bool predictTaken = false;
    /** Target addressing for branch opcodes. */
    BranchMode bmode = BranchMode::kPcRel;
    /** PC-relative byte displacement from the branch's own address. */
    std::int32_t disp = 0;
    /** 32-bit specifier for kAbs / kIndAbs / kIndSp branches. */
    std::uint32_t spec = 0;

    bool operator==(const Instruction&) const = default;

    bool writesCc() const { return isCompare(op); }

    /** Encoded length in 16-bit parcels (1, 3 or 5). */
    int lengthParcels() const;

    /** Encoded length in bytes. */
    Addr lengthBytes() const
    {
        return static_cast<Addr>(lengthParcels()) * kParcelBytes;
    }

    /**
     * Disassemble. @p pc is the instruction's own byte address, used to
     * print absolute targets for PC-relative branches.
     */
    std::string toString(Addr pc = 0) const;

    // Convenience factories -------------------------------------------

    static Instruction
    alu(Opcode op, Operand dst, Operand src)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.src = src;
        return i;
    }

    static Instruction
    mov(Operand dst, Operand src)
    {
        return alu(Opcode::kMov, dst, src);
    }

    static Instruction
    cmp(Opcode op, Operand a, Operand b)
    {
        return alu(op, a, b);
    }

    /** One-parcel PC-relative branch. */
    static Instruction
    branchRel(Opcode op, std::int32_t disp, bool predict = false)
    {
        Instruction i;
        i.op = op;
        i.bmode = BranchMode::kPcRel;
        i.disp = disp;
        i.predictTaken = predict;
        return i;
    }

    /** Three-parcel branch (absolute or indirect). */
    static Instruction
    branchFar(Opcode op, BranchMode bmode, std::uint32_t spec,
              bool predict = false)
    {
        Instruction i;
        i.op = op;
        i.bmode = bmode;
        i.spec = spec;
        i.predictTaken = predict;
        return i;
    }

    static Instruction
    enter(std::int32_t words)
    {
        return alu(Opcode::kEnter, Operand::imm(words), Operand::none());
    }

    static Instruction
    ret(std::int32_t words)
    {
        return alu(Opcode::kReturn, Operand::imm(words), Operand::none());
    }

    static Instruction
    leave(std::int32_t words)
    {
        return alu(Opcode::kLeave, Operand::imm(words), Operand::none());
    }

    static Instruction nop() { return {}; }

    static Instruction
    halt()
    {
        Instruction i;
        i.op = Opcode::kHalt;
        return i;
    }
};

/**
 * Range check for a one-parcel branch displacement: a signed 10-bit
 * parcel (word) offset, i.e. -1024 .. +1022 bytes in steps of 2 — the
 * exact range quoted in the paper.
 */
bool fitsShortBranch(std::int32_t disp_bytes);

} // namespace crisp

#endif // CRISP_ISA_INSTRUCTION_HH
