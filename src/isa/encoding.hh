/**
 * @file
 * Binary encoding of CRISP-like instructions into 16-bit parcels.
 *
 * Formats (first-parcel bit layout):
 *
 *   One-parcel branch (jmp / iftjmp / iffjmp), majors 0xC/0xD/0xE:
 *     [15:12] major   [11] predict   [10] 0   [9:0] signed word offset
 *   The signed 10-bit word offset gives a range of -1024 .. +1022 bytes,
 *   matching the paper exactly.
 *
 *   Everything else:
 *     [15:10] opcode (< 48 so the major nibble never reaches 0xC)
 *     [9]     long-form flag
 *   Short form (long = 0), one parcel:
 *     [8:4] a-field  (stack slot 0..30, 31 = Accum)
 *     [3:1] b-field  (slot 0..6 / 7 = Accum, or immediate 0..7)
 *     [0]   b-is-immediate
 *     enter/return reuse [8:0] as a 9-bit immediate word count.
 *   Long form (long = 1):
 *     Non-branch: [8] wide, [7:5] dst mode, [4:2] src mode.
 *       wide = 0: three parcels, 16-bit specifiers in parcels 1 and 2.
 *       wide = 1: five parcels, 32-bit LE specifiers in parcels 1-2, 3-4.
 *     Branch (jmp/iftjmp/iffjmp/call): [8] predict, [7:6] branch mode
 *       (0 = absolute, 1 = indirect-absolute, 2 = indirect-SP); parcels
 *       1-2 hold the 32-bit specifier. Always three parcels.
 *
 * The instruction length is decodable from the first parcel alone — the
 * property the PDU's decode window (QA..QE) and branch-adjust logic in
 * the paper's Figure 2 rely on.
 */

#ifndef CRISP_ISA_ENCODING_HH
#define CRISP_ISA_ENCODING_HH

#include <cstddef>
#include <vector>

#include "instruction.hh"
#include "opcode.hh"
#include "types.hh"

namespace crisp
{

/** Maximum instruction length in parcels. */
inline constexpr int kMaxParcels = 5;

/** Dedicated one-parcel branch majors (top nibble of parcel 0). */
inline constexpr Parcel kMajorJmp = 0xC;
inline constexpr Parcel kMajorIfT = 0xD;
inline constexpr Parcel kMajorIfF = 0xE;

/**
 * Instruction length in parcels (1, 3 or 5), from the first parcel.
 * Inline: the PDU's decode-window gate asks this every cycle.
 */
inline int
instructionLength(Parcel parcel0)
{
    const int major = parcel0 >> 12;
    if (major == kMajorJmp || major == kMajorIfT || major == kMajorIfF)
        return 1;

    const auto op = static_cast<Opcode>(parcel0 >> 10);
    if (isBranch(op))
        return 3;

    const bool long_form = (parcel0 >> 9) & 1;
    if (!long_form)
        return 1;
    const bool wide = (parcel0 >> 8) & 1;
    return wide ? 5 : 3;
}

/**
 * Encode @p inst into @p out (room for kMaxParcels parcels).
 * @return the number of parcels written.
 * @throws CrispError if the instruction has no valid encoding.
 */
int encode(const Instruction& inst, Parcel* out);

/** Encode and append to a parcel vector. @return parcels written. */
int encodeAppend(const Instruction& inst, std::vector<Parcel>& image);

/**
 * Decode one instruction starting at @p parcels. The caller guarantees
 * that instructionLength(parcels[0]) parcels are readable.
 */
Instruction decode(const Parcel* parcels);

} // namespace crisp

#endif // CRISP_ISA_ENCODING_HH
