/**
 * @file
 * CRISP object file serialization.
 */

#include "objfile.hh"

#include <cstring>
#include <fstream>

namespace crisp
{

namespace
{

constexpr char kMagic[4] = {'C', 'R', 'S', 'P'};
constexpr std::uint32_t kVersion = 1;

void
put32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
put16(std::vector<std::uint8_t>& out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        const std::uint16_t v =
            static_cast<std::uint16_t>(bytes_[pos_]) |
            (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8);
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        const std::uint32_t v =
            static_cast<std::uint32_t>(bytes_[pos_]) |
            (static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8) |
            (static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16) |
            (static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24);
        pos_ += 4;
        return v;
    }

    std::string
    str(std::size_t n)
    {
        need(n);
        std::string s(bytes_.begin() +
                          static_cast<std::ptrdiff_t>(pos_),
                      bytes_.begin() +
                          static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return bytes_.size() - pos_; }

  private:
    void
    need(std::size_t n) const
    {
        if (n > remaining())
            throw CrispError("object file truncated");
    }

    const std::vector<std::uint8_t>& bytes_;
    std::size_t pos_ = 0;
};

/** Largest memory image a loaded object may request (sanity bound: a
 *  corrupted header must raise CrispError, not exhaust the heap). */
constexpr std::uint64_t kMaxLoadableMemBytes = 1u << 30;

} // namespace

std::vector<std::uint8_t>
saveObject(const Program& prog)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic, kMagic + 4);
    put32(out, kVersion);
    put32(out, prog.textBase);
    put32(out, prog.entry);
    put32(out, prog.dataBase);
    put32(out, prog.memBytes);
    put32(out, static_cast<std::uint32_t>(prog.text.size()));
    put32(out, static_cast<std::uint32_t>(prog.data.size()));
    put32(out, static_cast<std::uint32_t>(prog.symbols.size()));
    for (Parcel p : prog.text)
        put16(out, p);
    out.insert(out.end(), prog.data.begin(), prog.data.end());
    for (const auto& [name, sym] : prog.symbols) {
        out.push_back(static_cast<std::uint8_t>(sym.kind));
        put16(out, static_cast<std::uint16_t>(name.size()));
        out.insert(out.end(), name.begin(), name.end());
        put32(out, sym.value);
    }
    return out;
}

Program
loadObject(const std::vector<std::uint8_t>& bytes)
{
    Reader r(bytes);
    char magic[4];
    for (char& c : magic)
        c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw CrispError("not a CRISP object file");
    const std::uint32_t version = r.u32();
    if (version != kVersion) {
        throw CrispError("unsupported object version " +
                         std::to_string(version));
    }

    Program prog;
    prog.textBase = r.u32();
    prog.entry = r.u32();
    prog.dataBase = r.u32();
    prog.memBytes = r.u32();
    const std::uint32_t text_len = r.u32();
    const std::uint32_t data_len = r.u32();
    const std::uint32_t sym_count = r.u32();

    // Validate every declared size against what the file actually
    // holds BEFORE reserving anything: a bit-flipped length field must
    // produce a clean CrispError, never an allocation explosion. Each
    // symbol record is at least 7 bytes (kind + name length + value).
    const std::uint64_t declared = 2ull * text_len + data_len +
                                   7ull * sym_count;
    if (declared > r.remaining()) {
        throw CrispError(
            "object file truncated: declared section sizes exceed "
            "the bytes present");
    }
    if (prog.memBytes > kMaxLoadableMemBytes) {
        throw CrispError("object file corrupt: unreasonable memory "
                         "image size " +
                         std::to_string(prog.memBytes));
    }
    if (prog.textBase % kParcelBytes != 0) {
        throw CrispError(
            "object file corrupt: text base is not parcel aligned");
    }
    if (prog.textBase + 2ull * text_len > prog.memBytes ||
        prog.dataBase + static_cast<std::uint64_t>(data_len) >
            prog.memBytes) {
        throw CrispError("object file corrupt: segments do not fit "
                         "in the declared memory image");
    }

    prog.text.reserve(text_len);
    for (std::uint32_t i = 0; i < text_len; ++i)
        prog.text.push_back(r.u16());
    prog.data.reserve(data_len);
    for (std::uint32_t i = 0; i < data_len; ++i)
        prog.data.push_back(r.u8());
    for (std::uint32_t i = 0; i < sym_count; ++i) {
        const std::uint8_t kind_raw = r.u8();
        if (kind_raw > static_cast<std::uint8_t>(Symbol::Kind::kLocalSlot)) {
            throw CrispError("object file corrupt: bad symbol kind " +
                             std::to_string(kind_raw));
        }
        const auto kind = static_cast<Symbol::Kind>(kind_raw);
        const std::uint16_t len = r.u16();
        const std::string name = r.str(len);
        const std::uint32_t value = r.u32();
        prog.symbols[name] = {kind, value};
    }
    return prog;
}

void
saveObjectFile(const Program& prog, const std::string& path)
{
    const auto bytes = saveObject(prog);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw CrispError("cannot open for writing: " + path);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f)
        throw CrispError("write failed: " + path);
}

Program
loadObjectFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw CrispError("cannot open: " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return loadObject(bytes);
}

} // namespace crisp
