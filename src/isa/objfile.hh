/**
 * @file
 * A simple binary object/executable format for linked CRISP programs,
 * so the command-line tools can pass programs between the compiler,
 * assembler and the simulators.
 *
 * Layout (all little-endian):
 *   magic     "CRSP" (4 bytes)
 *   version   u32 (currently 1)
 *   textBase  u32   entry u32   dataBase u32   memBytes u32
 *   textLen   u32 (parcels)     dataLen u32 (bytes)   symCount u32
 *   text      textLen x u16
 *   data      dataLen x u8
 *   symbols   symCount x { kind u8, nameLen u16, name bytes, value u32 }
 */

#ifndef CRISP_ISA_OBJFILE_HH
#define CRISP_ISA_OBJFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program.hh"

namespace crisp
{

/** Serialize a linked program. */
std::vector<std::uint8_t> saveObject(const Program& prog);

/** Deserialize. @throws CrispError on malformed input. */
Program loadObject(const std::vector<std::uint8_t>& bytes);

/** File convenience wrappers. @throws CrispError on I/O failure. */
void saveObjectFile(const Program& prog, const std::string& path);
Program loadObjectFile(const std::string& path);

} // namespace crisp

#endif // CRISP_ISA_OBJFILE_HH
