/**
 * @file
 * Basic machine types and constants for the CRISP-like architecture.
 *
 * The reconstructed CRISP ISA is a 32-bit, memory-to-memory machine with
 * 16-bit instruction parcels. Addresses are byte addresses; instructions
 * are aligned on 16-bit parcel boundaries; data words are 32-bit
 * little-endian.
 */

#ifndef CRISP_ISA_TYPES_HH
#define CRISP_ISA_TYPES_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace crisp
{

/** Byte address. Parcel aligned when used as an instruction address. */
using Addr = std::uint32_t;

/** Architectural data word (32-bit, signed arithmetic by default). */
using Word = std::int32_t;

/** Unsigned view of a data word. */
using UWord = std::uint32_t;

/** One 16-bit instruction parcel. */
using Parcel = std::uint16_t;

/** Size of a parcel in bytes. */
inline constexpr Addr kParcelBytes = 2;

/** Size of a data word in bytes. */
inline constexpr Addr kWordBytes = 4;

/** Default base byte address of the text (code) segment. */
inline constexpr Addr kTextBase = 0x1000;

/**
 * Default base byte address of the data segment. Kept below 64 KiB so
 * that globals are reachable with the 16-bit absolute specifiers of
 * three-parcel instructions.
 */
inline constexpr Addr kDataBase = 0x8000;

/** Default memory size in bytes; the stack grows down from the top. */
inline constexpr Addr kDefaultMemBytes = 0x40000;

/**
 * Error raised for malformed programs, encodings or simulator misuse.
 * Corresponds to gem5's fatal(): a user-level error, not a simulator bug.
 */
class CrispError : public std::runtime_error
{
  public:
    explicit CrispError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Sign-extend the low @p bits bits of @p value. */
constexpr std::int32_t
signExtend(std::uint32_t value, int bits)
{
    const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1u);
    const std::uint32_t sign = 1u << (bits - 1);
    const std::uint32_t low = value & mask;
    return static_cast<std::int32_t>((low ^ sign) - sign);
}

} // namespace crisp

#endif // CRISP_ISA_TYPES_HH
