/**
 * @file
 * Operand addressing modes for the CRISP-like ISA.
 *
 * The paper describes four standard addressing modes on memory operands,
 * plus the accumulator pseudo-operand used by the three-operand ALU forms
 * ("and3 i,1" followed by "cmp.= Accum,0" in Table 3).
 */

#ifndef CRISP_ISA_OPERAND_HH
#define CRISP_ISA_OPERAND_HH

#include <cstdint>
#include <string>

#include "types.hh"

namespace crisp
{

/** Operand addressing modes. */
enum class AddrMode : std::uint8_t {
    kNone = 0,  //!< operand not present
    kStack,     //!< memory word at SP + 4 * value (locals)
    kAbs,       //!< memory word at absolute byte address `value` (globals)
    kImm,       //!< immediate constant `value`
    kInd,       //!< memory word at address mem[SP + 4 * value] (pointers)
    kAccum,     //!< the accumulator pseudo-register
};

/** A decoded operand: an addressing mode plus its 32-bit specifier. */
struct Operand
{
    AddrMode mode = AddrMode::kNone;
    std::int32_t value = 0;

    static Operand none() { return {AddrMode::kNone, 0}; }
    static Operand stack(std::int32_t slot) { return {AddrMode::kStack, slot}; }
    static Operand abs(Addr a) { return {AddrMode::kAbs, static_cast<std::int32_t>(a)}; }
    static Operand imm(std::int32_t v) { return {AddrMode::kImm, v}; }
    static Operand ind(std::int32_t slot) { return {AddrMode::kInd, slot}; }
    static Operand accum() { return {AddrMode::kAccum, 0}; }

    bool operator==(const Operand&) const = default;

    /** True if this operand names a writable location. */
    bool
    isWritable() const
    {
        return mode == AddrMode::kStack || mode == AddrMode::kAbs ||
               mode == AddrMode::kInd || mode == AddrMode::kAccum;
    }

    /** Assembly spelling of the operand. */
    std::string toString() const;
};

} // namespace crisp

#endif // CRISP_ISA_OPERAND_HH
