/**
 * @file
 * Instruction length computation and disassembly printing.
 */

#include "instruction.hh"

#include <sstream>

namespace crisp
{

namespace
{

/** Can @p o be the `a` field of a one-parcel instruction? */
bool
fitsShortA(const Operand& o)
{
    switch (o.mode) {
      case AddrMode::kStack:
        return o.value >= 0 && o.value <= 30;
      case AddrMode::kAccum:
        return true;
      case AddrMode::kNone:
        return true;
      default:
        return false;
    }
}

/** Can @p o be the `b` field of a one-parcel instruction? */
bool
fitsShortB(const Operand& o)
{
    switch (o.mode) {
      case AddrMode::kStack:
        return o.value >= 0 && o.value <= 6;
      case AddrMode::kImm:
        return o.value >= 0 && o.value <= 7;
      case AddrMode::kAccum:
        return true;
      case AddrMode::kNone:
        return true;
      default:
        return false;
    }
}

/** Does @p o fit the 16-bit specifier of a three-parcel instruction? */
bool
fitsSpec16(const Operand& o)
{
    switch (o.mode) {
      case AddrMode::kStack:
      case AddrMode::kInd:
      case AddrMode::kImm:
        return o.value >= -32768 && o.value <= 32767;
      case AddrMode::kAbs:
        return o.value >= 0 && o.value <= 0xFFFF;
      case AddrMode::kAccum:
      case AddrMode::kNone:
        return true;
    }
    return false;
}

} // namespace

bool
fitsShortBranch(std::int32_t disp_bytes)
{
    if (disp_bytes % 2 != 0)
        return false;
    const std::int32_t words = disp_bytes / 2;
    return words >= -512 && words <= 511;
}

int
Instruction::lengthParcels() const
{
    switch (op) {
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
        return bmode == BranchMode::kPcRel ? 1 : 3;
      case Opcode::kCall:
        return 3;
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kEnter:
      case Opcode::kReturn:
      case Opcode::kLeave:
        return 1;
      default:
        if (fitsShortA(dst) && fitsShortB(src))
            return 1;
        if (fitsSpec16(dst) && fitsSpec16(src))
            return 3;
        return 5;
    }
}

std::string
Operand::toString() const
{
    std::ostringstream os;
    switch (mode) {
      case AddrMode::kNone:
        os << "<none>";
        break;
      case AddrMode::kStack:
        os << "sp[" << value << "]";
        break;
      case AddrMode::kAbs:
        os << "@0x" << std::hex << static_cast<std::uint32_t>(value);
        break;
      case AddrMode::kImm:
        os << value;
        break;
      case AddrMode::kInd:
        os << "[sp[" << value << "]]";
        break;
      case AddrMode::kAccum:
        os << "Accum";
        break;
    }
    return os.str();
}

std::string
Instruction::toString(Addr pc) const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (isConditionalBranch(op))
        os << (predictTaken ? "y" : "n");

    switch (op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kReturn:
      case Opcode::kEnter:
      case Opcode::kLeave:
        if (op != Opcode::kNop && op != Opcode::kHalt)
            os << " " << dst.value;
        break;
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
      case Opcode::kCall:
        switch (bmode) {
          case BranchMode::kPcRel:
            os << " 0x" << std::hex << (pc + static_cast<Addr>(disp));
            break;
          case BranchMode::kAbs:
            os << " 0x" << std::hex << spec;
            break;
          case BranchMode::kIndAbs:
            os << " *@0x" << std::hex << spec;
            break;
          case BranchMode::kIndSp:
            os << " *sp[" << static_cast<std::int32_t>(spec) << "]";
            break;
        }
        break;
      default:
        os << " " << dst.toString() << "," << src.toString();
        break;
    }
    return os.str();
}

} // namespace crisp
