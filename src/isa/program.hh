/**
 * @file
 * A linked CRISP program image: text parcels, initialized data, symbols.
 *
 * Produced by the assembler (or the crispcc code generator, which emits
 * assembly); consumed by the functional interpreter and the cycle-level
 * simulator, both of which fetch real parcels from a flat memory image.
 */

#ifndef CRISP_ISA_PROGRAM_HH
#define CRISP_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "encoding.hh"
#include "instruction.hh"
#include "types.hh"

namespace crisp
{

/** A named address or value in a program image. */
struct Symbol
{
    enum class Kind { kLabel, kGlobal, kLocalSlot };

    Kind kind = Kind::kLabel;
    std::uint32_t value = 0;
};

/** A fully linked program. */
class Program
{
  public:
    /** Text segment as parcels, starting at textBase(). */
    std::vector<Parcel> text;
    /** Initialized data bytes, starting at dataBase(). */
    std::vector<std::uint8_t> data;

    Addr textBase = kTextBase;
    Addr dataBase = kDataBase;
    /** Entry point (byte address into the text segment). */
    Addr entry = kTextBase;
    /** Total memory image size; SP starts at the top. */
    Addr memBytes = kDefaultMemBytes;

    std::map<std::string, Symbol> symbols;

    /** Byte address one past the last text parcel. */
    Addr
    textEnd() const
    {
        return textBase + static_cast<Addr>(text.size()) * kParcelBytes;
    }

    bool
    inText(Addr a) const
    {
        return a >= textBase && a < textEnd();
    }

    /** Fetch the parcel at byte address @p a (must be parcel aligned). */
    Parcel
    parcelAt(Addr a) const
    {
        if (a % kParcelBytes != 0)
            throw CrispError("unaligned parcel fetch");
        if (!inText(a))
            throw CrispError("parcel fetch outside text segment");
        return text[(a - textBase) / kParcelBytes];
    }

    /** Decode the instruction at byte address @p a. */
    Instruction
    fetch(Addr a) const
    {
        Parcel buf[kMaxParcels] = {};
        const int len = instructionLength(parcelAt(a));
        for (int i = 0; i < len; ++i)
            buf[i] = parcelAt(a + static_cast<Addr>(i) * kParcelBytes);
        return decode(buf);
    }

    /** Look up a symbol address/value by name. */
    std::optional<std::uint32_t>
    lookup(const std::string& name) const
    {
        const auto it = symbols.find(name);
        if (it == symbols.end())
            return std::nullopt;
        return it->second.value;
    }

    /**
     * Append an encoded instruction to the text segment.
     * @return the byte address the instruction was placed at.
     */
    Addr
    append(const Instruction& inst)
    {
        const Addr at = textEnd();
        encodeAppend(inst, text);
        return at;
    }

    /** Disassemble the whole text segment, one instruction per line. */
    std::string disassemble() const;

    /** Static count of instructions in the text segment. */
    int staticInstructionCount() const;

    /** Static histogram of instruction lengths in parcels (1/3/5). */
    std::map<int, int> staticLengthHistogram() const;
};

} // namespace crisp

#endif // CRISP_ISA_PROGRAM_HH
