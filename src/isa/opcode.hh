/**
 * @file
 * Opcode definitions and static opcode properties for the CRISP-like ISA.
 *
 * Design rules lifted from the paper:
 *  - the condition flag is written ONLY by compare instructions;
 *  - branches are separate instructions (no integrated compare-and-branch);
 *  - no instruction has side effects, so any in-flight instruction can be
 *    cancelled by clearing a valid bit.
 */

#ifndef CRISP_ISA_OPCODE_HH
#define CRISP_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

#include "types.hh"

namespace crisp
{

/**
 * Instruction opcodes.
 *
 * All enum values must stay below 48 so that the top nibble of an encoded
 * first parcel never collides with the dedicated one-parcel branch majors
 * (0xC, 0xD, 0xE); see encoding.hh.
 */
enum class Opcode : std::uint8_t {
    kNop = 0,
    kHalt,

    // Two-operand memory-to-memory ALU: dst = dst OP src.
    kAdd,
    kSub,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kMul,
    kDiv,
    kRem,

    // Three-operand accumulator ALU: Accum = a OP b (the paper's "and3").
    kAdd3,
    kSub3,
    kAnd3,
    kOr3,
    kXor3,
    kMul3,

    // Data movement: dst = src.
    kMov,

    // Compares: flag = (a REL b). The only writers of the condition flag.
    kCmpEq,
    kCmpNe,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kCmpLtU,
    kCmpGeU,

    // Control transfer.
    kJmp,      //!< unconditional branch
    kIfTJmp,   //!< branch if flag is true
    kIfFJmp,   //!< branch if flag is false
    kCall,     //!< push return address, branch (three-parcel only)
    kEnter,    //!< allocate stack frame: SP -= 4 * imm
    kReturn,   //!< deallocate frame and pop return address
    kLeave,    //!< deallocate a caller-side argument area: SP += 4 * imm

    kNumOpcodes
};

/** Number of distinct opcodes. */
inline constexpr int kOpcodeCount =
    static_cast<int>(Opcode::kNumOpcodes);

/** Mnemonic, as accepted/produced by the assembler/disassembler. */
std::string_view opcodeName(Opcode op);

// The opcode predicates below sit on the simulator's per-cycle decode
// and retire paths, so they are defined inline.

/** True for jmp / iftjmp / iffjmp / call. */
inline bool
isBranch(Opcode op)
{
    return op == Opcode::kJmp || op == Opcode::kIfTJmp ||
           op == Opcode::kIfFJmp || op == Opcode::kCall;
}

/** True for the two conditional branch opcodes. */
inline bool
isConditionalBranch(Opcode op)
{
    return op == Opcode::kIfTJmp || op == Opcode::kIfFJmp;
}

/** True for the compare opcodes (the only condition-flag writers). */
inline bool
isCompare(Opcode op)
{
    return op >= Opcode::kCmpEq && op <= Opcode::kCmpGeU;
}

/** True for two-operand ALU ops (dst = dst OP src). */
inline bool
isAlu2(Opcode op)
{
    return op >= Opcode::kAdd && op <= Opcode::kRem;
}

/** True for three-operand accumulator ALU ops (Accum = a OP b). */
inline bool
isAlu3(Opcode op)
{
    return op >= Opcode::kAdd3 && op <= Opcode::kMul3;
}

/**
 * True if the opcode may be the non-branch half of a folded pair.
 * Branches cannot fold with branches; return transfers control too.
 * (Branches, returns and halts transfer — or end — control themselves,
 * so a following branch would be unreachable.)
 */
inline bool
isFoldableBody(Opcode op)
{
    return !isBranch(op) && op != Opcode::kReturn && op != Opcode::kHalt;
}

/** Evaluate a compare opcode on two words. Inline: this sits on the
 *  retire path of every executed compare in both engines. */
inline bool
evalCompare(Opcode op, std::int32_t a, std::int32_t b)
{
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case Opcode::kCmpEq:  return a == b;
      case Opcode::kCmpNe:  return a != b;
      case Opcode::kCmpLt:  return a < b;
      case Opcode::kCmpLe:  return a <= b;
      case Opcode::kCmpGt:  return a > b;
      case Opcode::kCmpGe:  return a >= b;
      case Opcode::kCmpLtU: return ua < ub;
      case Opcode::kCmpGeU: return ua >= ub;
      default:
        throw CrispError("evalCompare: not a compare opcode");
    }
}

/** Evaluate a two- or three-operand ALU opcode. Division by zero yields
 *  0 (the hardware result is architecturally defined as 0 here so that
 *  random property-test programs cannot fault). Inline for the same
 *  reason as evalCompare: one call per executed ALU instruction. */
inline std::int32_t
evalAlu(Opcode op, std::int32_t a, std::int32_t b)
{
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case Opcode::kAdd: case Opcode::kAdd3:
        return static_cast<std::int32_t>(ua + ub);
      case Opcode::kSub: case Opcode::kSub3:
        return static_cast<std::int32_t>(ua - ub);
      case Opcode::kAnd: case Opcode::kAnd3:
        return a & b;
      case Opcode::kOr: case Opcode::kOr3:
        return a | b;
      case Opcode::kXor: case Opcode::kXor3:
        return a ^ b;
      case Opcode::kShl:
        return static_cast<std::int32_t>(ua << (ub & 31u));
      case Opcode::kShr:
        return static_cast<std::int32_t>(ua >> (ub & 31u));
      case Opcode::kMul: case Opcode::kMul3:
        return static_cast<std::int32_t>(ua * ub);
      case Opcode::kDiv:
        return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? a : a / b);
      case Opcode::kRem:
        return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? 0 : a % b);
      case Opcode::kMov:
        return b;
      default:
        throw CrispError("evalAlu: not an ALU opcode");
    }
}

} // namespace crisp

#endif // CRISP_ISA_OPCODE_HH
