/**
 * @file
 * Opcode definitions and static opcode properties for the CRISP-like ISA.
 *
 * Design rules lifted from the paper:
 *  - the condition flag is written ONLY by compare instructions;
 *  - branches are separate instructions (no integrated compare-and-branch);
 *  - no instruction has side effects, so any in-flight instruction can be
 *    cancelled by clearing a valid bit.
 */

#ifndef CRISP_ISA_OPCODE_HH
#define CRISP_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace crisp
{

/**
 * Instruction opcodes.
 *
 * All enum values must stay below 48 so that the top nibble of an encoded
 * first parcel never collides with the dedicated one-parcel branch majors
 * (0xC, 0xD, 0xE); see encoding.hh.
 */
enum class Opcode : std::uint8_t {
    kNop = 0,
    kHalt,

    // Two-operand memory-to-memory ALU: dst = dst OP src.
    kAdd,
    kSub,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kMul,
    kDiv,
    kRem,

    // Three-operand accumulator ALU: Accum = a OP b (the paper's "and3").
    kAdd3,
    kSub3,
    kAnd3,
    kOr3,
    kXor3,
    kMul3,

    // Data movement: dst = src.
    kMov,

    // Compares: flag = (a REL b). The only writers of the condition flag.
    kCmpEq,
    kCmpNe,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kCmpLtU,
    kCmpGeU,

    // Control transfer.
    kJmp,      //!< unconditional branch
    kIfTJmp,   //!< branch if flag is true
    kIfFJmp,   //!< branch if flag is false
    kCall,     //!< push return address, branch (three-parcel only)
    kEnter,    //!< allocate stack frame: SP -= 4 * imm
    kReturn,   //!< deallocate frame and pop return address
    kLeave,    //!< deallocate a caller-side argument area: SP += 4 * imm

    kNumOpcodes
};

/** Number of distinct opcodes. */
inline constexpr int kOpcodeCount =
    static_cast<int>(Opcode::kNumOpcodes);

/** Mnemonic, as accepted/produced by the assembler/disassembler. */
std::string_view opcodeName(Opcode op);

/** True for jmp / iftjmp / iffjmp / call. */
bool isBranch(Opcode op);

/** True for the two conditional branch opcodes. */
bool isConditionalBranch(Opcode op);

/** True for the compare opcodes (the only condition-flag writers). */
bool isCompare(Opcode op);

/** True for two-operand ALU ops (dst = dst OP src). */
bool isAlu2(Opcode op);

/** True for three-operand accumulator ALU ops (Accum = a OP b). */
bool isAlu3(Opcode op);

/**
 * True if the opcode may be the non-branch half of a folded pair.
 * Branches cannot fold with branches; return transfers control too.
 */
bool isFoldableBody(Opcode op);

/** Evaluate a compare opcode on two words. */
bool evalCompare(Opcode op, std::int32_t a, std::int32_t b);

/** Evaluate a two- or three-operand ALU opcode. Division by zero yields
 *  0 (the hardware result is architecturally defined as 0 here so that
 *  random property-test programs cannot fault). */
std::int32_t evalAlu(Opcode op, std::int32_t a, std::int32_t b);

} // namespace crisp

#endif // CRISP_ISA_OPCODE_HH
