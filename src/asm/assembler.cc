/**
 * @file
 * Assembler: text parsing, program building and branch relaxation.
 */

#include "assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <unordered_map>

namespace crisp
{

namespace
{

[[noreturn]] void
asmError(int line, const std::string& msg)
{
    throw CrispError("asm line " + std::to_string(line) + ": " + msg);
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

bool
isIdent(const std::string& s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

bool
parseInt(const std::string& s, std::int64_t& out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stoll(s, &pos, 0);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

const std::unordered_map<std::string, Opcode>&
mnemonicTable()
{
    static const std::unordered_map<std::string, Opcode> table = {
        {"nop", Opcode::kNop},       {"halt", Opcode::kHalt},
        {"add", Opcode::kAdd},       {"sub", Opcode::kSub},
        {"and", Opcode::kAnd},       {"or", Opcode::kOr},
        {"xor", Opcode::kXor},       {"shl", Opcode::kShl},
        {"shr", Opcode::kShr},       {"mul", Opcode::kMul},
        {"div", Opcode::kDiv},       {"rem", Opcode::kRem},
        {"add3", Opcode::kAdd3},     {"sub3", Opcode::kSub3},
        {"and3", Opcode::kAnd3},     {"or3", Opcode::kOr3},
        {"xor3", Opcode::kXor3},     {"mul3", Opcode::kMul3},
        {"mov", Opcode::kMov},
        {"cmp.=", Opcode::kCmpEq},   {"cmp.!=", Opcode::kCmpNe},
        {"cmp.s<", Opcode::kCmpLt},  {"cmp.s<=", Opcode::kCmpLe},
        {"cmp.s>", Opcode::kCmpGt},  {"cmp.s>=", Opcode::kCmpGe},
        {"cmp.u<", Opcode::kCmpLtU}, {"cmp.u>=", Opcode::kCmpGeU},
        {"enter", Opcode::kEnter},   {"return", Opcode::kReturn},
        {"leave", Opcode::kLeave},
        {"jmp", Opcode::kJmp},       {"call", Opcode::kCall},
    };
    return table;
}

} // namespace

// AsmBuilder --------------------------------------------------------------

void
AsmBuilder::label(const std::string& name)
{
    Item item;
    item.kind = Item::Kind::kLabel;
    item.name = name;
    items_.push_back(std::move(item));
}

void
AsmBuilder::emit(const Instruction& inst)
{
    Item item;
    item.kind = Item::Kind::kInst;
    item.inst = inst;
    items_.push_back(std::move(item));
}

void
AsmBuilder::branch(Opcode op, const std::string& target, bool predict_taken)
{
    if (!isBranch(op))
        throw CrispError("AsmBuilder::branch: not a branch opcode");
    Item item;
    item.kind = Item::Kind::kBranch;
    item.name = target;
    item.inst.op = op;
    item.inst.predictTaken = predict_taken;
    item.longBranch = (op == Opcode::kCall);
    items_.push_back(std::move(item));
}

void
AsmBuilder::branchIndirect(Opcode op, BranchMode bmode, std::uint32_t spec)
{
    emit(Instruction::branchFar(op, bmode, spec));
}

void
AsmBuilder::global(const std::string& name, Word init)
{
    globals_.emplace_back(name, std::vector<Word>{init});
}

void
AsmBuilder::space(const std::string& name, Addr words)
{
    globals_.emplace_back(name, std::vector<Word>(words, 0));
}

void
AsmBuilder::labelTable(const std::string& name,
                       std::vector<std::string> labels)
{
    globals_.emplace_back(name, std::vector<Word>(labels.size(), 0));
    tableFixups_.emplace_back(name, std::move(labels));
}

Operand
AsmBuilder::globalOperand(const std::string& name) const
{
    Addr a = kDataBase;
    for (const auto& [gname, init] : globals_) {
        if (gname == name)
            return Operand::abs(a);
        a += static_cast<Addr>(init.size()) * kWordBytes;
    }
    throw CrispError("unknown global: " + name);
}

Program
AsmBuilder::link() const
{
    // Data layout first: global addresses are independent of text size.
    std::map<std::string, Addr> global_addr;
    Addr daddr = kDataBase;
    std::vector<std::uint8_t> data;
    for (const auto& [name, init] : globals_) {
        if (global_addr.count(name))
            throw CrispError("duplicate global: " + name);
        global_addr[name] = daddr;
        for (Word w : init) {
            const auto u = static_cast<std::uint32_t>(w);
            data.push_back(static_cast<std::uint8_t>(u));
            data.push_back(static_cast<std::uint8_t>(u >> 8));
            data.push_back(static_cast<std::uint8_t>(u >> 16));
            data.push_back(static_cast<std::uint8_t>(u >> 24));
        }
        daddr += static_cast<Addr>(init.size()) * kWordBytes;
    }

    // Iterative branch relaxation: start with every PC-relative branch
    // short; widen any whose displacement does not fit; repeat to a
    // fixpoint (widening is monotonic, so this terminates).
    std::vector<Item> items = items_;
    std::map<std::string, Addr> label_addr;
    for (int round = 0; ; ++round) {
        if (round > 64)
            throw CrispError("branch relaxation did not converge");

        Addr pc = kTextBase;
        for (const auto& item : items) {
            switch (item.kind) {
              case Item::Kind::kLabel:
                label_addr[item.name] = pc;
                break;
              case Item::Kind::kBranch:
                pc += (item.longBranch ? 3 : 1) * kParcelBytes;
                break;
              case Item::Kind::kInst:
                pc += item.inst.lengthBytes();
                break;
            }
        }

        bool changed = false;
        pc = kTextBase;
        for (auto& item : items) {
            if (item.kind == Item::Kind::kLabel)
                continue;
            if (item.kind == Item::Kind::kBranch && !item.longBranch) {
                const auto it = label_addr.find(item.name);
                if (it == label_addr.end()) {
                    asmError(item.line,
                             "undefined label: " + item.name);
                }
                const auto disp = static_cast<std::int32_t>(
                    it->second - pc);
                if (!fitsShortBranch(disp)) {
                    item.longBranch = true;
                    changed = true;
                }
            }
            pc += (item.kind == Item::Kind::kBranch
                       ? (item.longBranch ? 3 : 1) * kParcelBytes
                       : item.inst.lengthBytes());
        }
        if (!changed)
            break;
    }

    // Emission.
    Program prog;
    prog.data = std::move(data);
    Addr pc = kTextBase;
    for (const auto& item : items) {
        switch (item.kind) {
          case Item::Kind::kLabel:
            prog.symbols[item.name] = {Symbol::Kind::kLabel, pc};
            break;
          case Item::Kind::kBranch: {
            const Addr target = label_addr.at(item.name);
            Instruction b;
            if (item.longBranch) {
                b = Instruction::branchFar(item.inst.op, BranchMode::kAbs,
                                           target, item.inst.predictTaken);
            } else {
                b = Instruction::branchRel(
                    item.inst.op, static_cast<std::int32_t>(target - pc),
                    item.inst.predictTaken);
            }
            pc += static_cast<Addr>(encodeAppend(b, prog.text)) *
                  kParcelBytes;
            break;
          }
          case Item::Kind::kInst:
            pc += static_cast<Addr>(encodeAppend(item.inst, prog.text)) *
                  kParcelBytes;
            break;
        }
    }

    for (const auto& [name, a] : global_addr)
        prog.symbols[name] = {Symbol::Kind::kGlobal, a};

    // Jump-table fixups: write final label addresses into the data
    // image.
    for (const auto& [gname, labels] : tableFixups_) {
        const Addr base = global_addr.at(gname) - kDataBase;
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const auto it = label_addr.find(labels[i]);
            if (it == label_addr.end())
                throw CrispError("label table references undefined "
                                 "label: " + labels[i]);
            const std::uint32_t v = it->second;
            const std::size_t at = base + i * kWordBytes;
            prog.data[at] = static_cast<std::uint8_t>(v);
            prog.data[at + 1] = static_cast<std::uint8_t>(v >> 8);
            prog.data[at + 2] = static_cast<std::uint8_t>(v >> 16);
            prog.data[at + 3] = static_cast<std::uint8_t>(v >> 24);
        }
    }

    if (!entry_.empty()) {
        const auto it = label_addr.find(entry_);
        if (it == label_addr.end())
            throw CrispError("undefined entry label: " + entry_);
        prog.entry = it->second;
    } else {
        prog.entry = kTextBase;
    }
    return prog;
}

// Textual assembler -------------------------------------------------------

namespace
{

/** Per-file parser state. */
struct Parser
{
    AsmBuilder builder;
    std::map<std::string, std::int32_t> locals;

    Operand
    parseOperand(const std::string& text, int line)
    {
        std::string s = trim(text);
        if (s.empty())
            asmError(line, "empty operand");

        if (s == "Accum" || s == "accum")
            return Operand::accum();

        std::int64_t v = 0;
        if (parseInt(s, v))
            return Operand::imm(static_cast<std::int32_t>(v));

        if (s[0] == '@') {
            if (!parseInt(s.substr(1), v))
                asmError(line, "bad absolute operand: " + s);
            return Operand::abs(static_cast<Addr>(v));
        }

        if (s.rfind("sp[", 0) == 0 && s.back() == ']') {
            if (!parseInt(s.substr(3, s.size() - 4), v))
                asmError(line, "bad stack operand: " + s);
            return Operand::stack(static_cast<std::int32_t>(v));
        }

        if (s.front() == '[' && s.back() == ']') {
            const std::string inner = trim(s.substr(1, s.size() - 2));
            if (inner.rfind("sp[", 0) == 0 && inner.back() == ']') {
                if (!parseInt(inner.substr(3, inner.size() - 4), v))
                    asmError(line, "bad indirect operand: " + s);
                return Operand::ind(static_cast<std::int32_t>(v));
            }
            const auto it = locals.find(inner);
            if (it == locals.end())
                asmError(line, "indirect via unknown local: " + inner);
            return Operand::ind(it->second);
        }

        if (isIdent(s)) {
            const auto it = locals.find(s);
            if (it != locals.end())
                return Operand::stack(it->second);
            try {
                return builder.globalOperand(s);
            } catch (const CrispError&) {
                asmError(line, "unknown identifier: " + s);
            }
        }
        asmError(line, "cannot parse operand: " + s);
    }
};

/** Strip comments and return trimmed line content. */
std::string
cleanLine(std::string_view raw)
{
    std::string s(raw);
    const auto semi = s.find_first_of(";#");
    if (semi != std::string::npos)
        s.resize(semi);
    return trim(s);
}

} // namespace

Program
assemble(std::string_view source)
{
    // First scan: data directives and entry, so that global addresses
    // are known before instruction operands are parsed.
    Parser p;
    {
        std::istringstream in{std::string(source)};
        std::string raw;
        int line = 0;
        while (std::getline(in, raw)) {
            ++line;
            std::string s = cleanLine(raw);
            if (s.rfind(".global", 0) == 0) {
                std::istringstream ls(s.substr(7));
                std::string name;
                std::int64_t init = 0;
                ls >> name;
                if (!isIdent(name))
                    asmError(line, "bad .global name");
                std::string init_s;
                if (ls >> init_s && !parseInt(init_s, init))
                    asmError(line, "bad .global initializer");
                p.builder.global(name, static_cast<Word>(init));
            } else if (s.rfind(".space", 0) == 0) {
                std::istringstream ls(s.substr(6));
                std::string name;
                std::int64_t words = 0;
                std::string words_s;
                ls >> name >> words_s;
                if (!isIdent(name) || !parseInt(words_s, words) ||
                    words <= 0) {
                    asmError(line, "bad .space directive");
                }
                p.builder.space(name, static_cast<Addr>(words));
            } else if (s.rfind(".table", 0) == 0) {
                std::istringstream ls(s.substr(6));
                std::string name;
                ls >> name;
                if (!isIdent(name))
                    asmError(line, "bad .table name");
                std::vector<std::string> labels;
                std::string lab;
                while (ls >> lab) {
                    if (!isIdent(lab))
                        asmError(line, "bad .table label: " + lab);
                    labels.push_back(lab);
                }
                if (labels.empty())
                    asmError(line, ".table needs at least one label");
                p.builder.labelTable(name, std::move(labels));
            } else if (s.rfind(".entry", 0) == 0) {
                const std::string name = trim(s.substr(6));
                if (!isIdent(name))
                    asmError(line, "bad .entry label");
                p.builder.entry(name);
            }
        }
    }

    // Second scan: labels, .local bindings and instructions, in order.
    std::istringstream in{std::string(source)};
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        std::string s = cleanLine(raw);
        if (s.empty())
            continue;
        if (s[0] == '.') {
            if (s.rfind(".local", 0) == 0 &&
                s.rfind(".locals", 0) != 0) {
                std::istringstream ls(s.substr(6));
                std::string name;
                std::string slot_s;
                std::int64_t slot = 0;
                ls >> name >> slot_s;
                if (!isIdent(name) || !parseInt(slot_s, slot) || slot < 0)
                    asmError(line, "bad .local directive");
                p.locals[name] = static_cast<std::int32_t>(slot);
            } else if (s == ".clearlocals") {
                p.locals.clear();
            }
            // .global/.space/.entry were handled in the first scan.
            continue;
        }

        // Leading labels (possibly several, possibly with an
        // instruction on the same line).
        while (true) {
            const auto colon = s.find(':');
            if (colon == std::string::npos)
                break;
            const std::string head = trim(s.substr(0, colon));
            if (!isIdent(head))
                break; // the ':' belongs to something else (not a label)
            p.builder.label(head);
            s = trim(s.substr(colon + 1));
        }
        if (s.empty())
            continue;

        // Mnemonic and operand list.
        const auto sp = s.find_first_of(" \t");
        std::string mnem = (sp == std::string::npos) ? s : s.substr(0, sp);
        std::string rest =
            (sp == std::string::npos) ? "" : trim(s.substr(sp + 1));

        // Conditional branch mnemonics with a prediction suffix.
        bool predict = false;
        Opcode op = Opcode::kNop;
        bool is_cond = false;
        auto match_cond = [&](const std::string& base, Opcode o) {
            if (mnem == base || mnem == base + "y" || mnem == base + "n") {
                op = o;
                is_cond = true;
                predict = (mnem == base + "y");
                return true;
            }
            return false;
        };
        if (!match_cond("iftjmp", Opcode::kIfTJmp) &&
            !match_cond("iffjmp", Opcode::kIfFJmp)) {
            const auto it = mnemonicTable().find(mnem);
            if (it == mnemonicTable().end())
                asmError(line, "unknown mnemonic: " + mnem);
            op = it->second;
        }

        if (isBranch(op)) {
            if (rest.empty())
                asmError(line, "branch needs a target");
            if (rest[0] == '*') {
                const std::string t = trim(rest.substr(1));
                if (t.rfind("sp[", 0) == 0 && t.back() == ']') {
                    std::int64_t slot = 0;
                    if (!parseInt(t.substr(3, t.size() - 4), slot))
                        asmError(line, "bad indirect branch: " + rest);
                    p.builder.branchIndirect(
                        op, BranchMode::kIndSp,
                        static_cast<std::uint32_t>(slot));
                } else if (isIdent(t)) {
                    const Operand g = p.builder.globalOperand(t);
                    p.builder.branchIndirect(
                        op, BranchMode::kIndAbs,
                        static_cast<std::uint32_t>(g.value));
                } else {
                    asmError(line, "bad indirect branch target: " + rest);
                }
            } else if (isIdent(rest)) {
                p.builder.branch(op, rest, predict);
            } else {
                asmError(line, "bad branch target: " + rest);
            }
            continue;
        }

        if (op == Opcode::kEnter || op == Opcode::kReturn ||
            op == Opcode::kLeave) {
            std::int64_t words = 0;
            if (!parseInt(rest, words) || words < 0)
                asmError(line, "bad frame size: " + rest);
            Instruction fi;
            if (op == Opcode::kEnter)
                fi = Instruction::enter(static_cast<std::int32_t>(words));
            else if (op == Opcode::kLeave)
                fi = Instruction::leave(static_cast<std::int32_t>(words));
            else
                fi = Instruction::ret(static_cast<std::int32_t>(words));
            p.builder.emit(fi);
            continue;
        }

        if (op == Opcode::kNop || op == Opcode::kHalt) {
            p.builder.emit(op == Opcode::kNop ? Instruction::nop()
                                              : Instruction::halt());
            continue;
        }

        // Two-operand instruction.
        const auto comma = rest.find(',');
        if (comma == std::string::npos)
            asmError(line, "expected two operands: " + s);
        const Operand a = p.parseOperand(rest.substr(0, comma), line);
        const Operand b = p.parseOperand(rest.substr(comma + 1), line);

        if (isAlu2(op) || op == Opcode::kMov) {
            if (!a.isWritable())
                asmError(line, "destination not writable: " + s);
        }
        p.builder.emit(Instruction::alu(op, a, b));
    }

    return p.builder.link();
}

} // namespace crisp
