/**
 * @file
 * The workload suite: CRISP-C sources for every program used in the
 * paper's evaluation, plus golden results computed by C++ mirrors.
 *
 * Substitutions (documented in DESIGN.md): the paper's three large
 * programs (troff, the C compiler, a VLSI design-rule checker) and the
 * three benchmarks (Dhrystone, Cwhet, Puzzle) are replaced by
 * deterministic proxies with the same *branch-behaviour* signatures:
 *
 *   troff  -> character-classification/word-count state machine over
 *             LCG-generated text (heavily skewed branches)
 *   cc     -> expression tokenizer/evaluator over an LCG token stream
 *             (irregular, phase-dependent branches)
 *   drc    -> rectangle overlap/spacing checker (skewed comparisons)
 *   dhry   -> Dhrystone-like mix: calls, ladders, an alternating
 *             condition (static beats 1-bit dynamic, as in Table 1)
 *   cwhet  -> integer Whetstone-like kernels with alternating and
 *             mod-3 conditions
 *   puzzle -> N-queens backtracking search (global arrays, recursion)
 *
 * fig3 is the paper's Figure 3 program verbatim (modulo the paper's
 * odd/even vs zeros/ones transcription slip).
 */

#ifndef CRISP_WORKLOADS_WORKLOADS_HH
#define CRISP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/types.hh"

namespace crisp
{

struct Workload
{
    std::string name;
    std::string description;
    std::string source;
    /** Expected final value of specific globals (golden C++ mirror). */
    std::vector<std::pair<std::string, Word>> expectedGlobals;
    /** Expected accumulator (main's return value); checked if set. */
    bool checkAccum = false;
    Word expectedAccum = 0;
};

/** The paper's Figure 3 program with a configurable trip count. */
std::string fig3Source(int loops = 1024);

/** Expected main() return value (the final j) for fig3Source(loops). */
Word fig3Expected(int loops = 1024);

/** All workloads, golden values included. */
const std::vector<Workload>& allWorkloads();

/** Look up one workload by name. @throws CrispError if unknown. */
const Workload& workload(const std::string& name);

} // namespace crisp

#endif // CRISP_WORKLOADS_WORKLOADS_HH
