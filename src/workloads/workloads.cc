/**
 * @file
 * Workload sources and golden mirrors.
 *
 * Every workload is deterministic: inputs are produced by an in-program
 * LCG, and a C++ mirror of each program computes the expected results
 * the simulators must reproduce (wraparound semantics match the ISA's
 * evalAlu: 32-bit two's-complement arithmetic, logical right shift).
 */

#include "workloads.hh"

#include <cstdint>

namespace crisp
{

namespace
{

using U = std::uint32_t;
using I = std::int32_t;

/** The LCG every workload uses. */
I
lcg(I& seed)
{
    seed = static_cast<I>(static_cast<U>(seed) * 1103515245u + 12345u);
    return seed;
}

/** Logical right shift, as the ISA defines '>>'. */
I
shr(I x, int n)
{
    return static_cast<I>(static_cast<U>(x) >> n);
}

// ---------------------------------------------------------------- fig3

const char* kFig3Template = R"(
/* The paper's Figure 3 evaluation program. */
int main()
{
    int i, j, odd, even, sum;
    j = odd = even = 0;
    sum = 0;
    for (i = 0; i < LOOPS; i++) {
        sum = sum + i;
        if (i & 1)
            odd++;
        else
            even++;
        j = sum;
    }
    return j;
}
)";

// --------------------------------------------------------------- troff

const char* kTroff = R"(
/* troff proxy: line/word scanner over LCG-generated text. */
int seed;
int nlines, nwords, nchars, maxline;

int nextc()
{
    seed = seed * 1103515245 + 12345;
    int r = (seed >> 16) & 127;
    if (r < 6)
        return 10;
    if (r < 24)
        return 32;
    return 97 + (r % 26);
}

int main()
{
    int i, c, inword, linelen;
    seed = 42;
    nlines = 0; nwords = 0; nchars = 0; maxline = 0;
    inword = 0;
    linelen = 0;
    for (i = 0; i < 20000; i++) {
        c = nextc();
        nchars++;
        if (c == 10) {
            nlines++;
            if (linelen > maxline)
                maxline = linelen;
            linelen = 0;
            inword = 0;
        } else {
            linelen++;
            if (c == 32) {
                inword = 0;
            } else if (!inword) {
                inword = 1;
                nwords++;
            }
        }
    }
    return nwords;
}
)";

void
troffMirror(Workload& w)
{
    I seed = 42;
    I nlines = 0, nwords = 0, nchars = 0, maxline = 0;
    I inword = 0, linelen = 0;
    auto nextc = [&]() -> I {
        I r = shr(lcg(seed), 16) & 127;
        if (r < 6)
            return 10;
        if (r < 24)
            return 32;
        return 97 + (r % 26);
    };
    for (I i = 0; i < 20000; ++i) {
        const I c = nextc();
        ++nchars;
        if (c == 10) {
            ++nlines;
            if (linelen > maxline)
                maxline = linelen;
            linelen = 0;
            inword = 0;
        } else {
            ++linelen;
            if (c == 32) {
                inword = 0;
            } else if (!inword) {
                inword = 1;
                ++nwords;
            }
        }
    }
    w.expectedGlobals = {{"nlines", nlines},
                         {"nwords", nwords},
                         {"nchars", nchars},
                         {"maxline", maxline}};
    w.checkAccum = true;
    w.expectedAccum = nwords;
}

// --------------------------------------------------------------- ccomp

const char* kCcomp = R"(
/* C-compiler proxy: symbol-table driven token processing with long
 * behaviour phases (dynamic predictors should edge out static here). */
int seed;
int symtab[64];
int symcount, lookups, inserts, emitted;

int lookup(int key)
{
    int i;
    for (i = 0; i < symcount; i++) {
        if (symtab[i] == key)
            return i;
    }
    return -1;
}

int main()
{
    int t, k, idx, phase, mask;
    seed = 7;
    symcount = 0; lookups = 0; inserts = 0; emitted = 0;
    for (t = 0; t < 6000; t++) {
        seed = seed * 1103515245 + 12345;
        phase = (t >> 9) & 1;
        if (phase)
            mask = 15;
        else
            mask = 63;
        k = (seed >> 16) & mask;
        if ((t & 3) == 0) {
            idx = lookup(k);
            lookups++;
        } else {
            idx = -1;
        }
        if (idx < 0) {
            if (symcount < 64) {
                symtab[symcount] = k;
                symcount++;
                inserts++;
            }
        } else {
            emitted = emitted + idx;
        }
        if (phase) {
            if (k & 1)
                emitted++;
        } else {
            if (k & 3)
                emitted--;
        }
        if ((seed >> 17) & 1)
            emitted = emitted + 2;
        else
            emitted = emitted - 1;
        if ((seed >> 21) & 1)
            lookups = lookups + 1;
        if (t & 512)
            inserts = inserts + 0;
        else
            emitted = emitted ^ 1;
        if (((t >> 7) & 1) == 0)
            emitted = emitted + 3;
    }
    return emitted;
}
)";

void
ccompMirror(Workload& w)
{
    I seed = 7;
    I symtab[64];
    I symcount = 0, lookups = 0, inserts = 0, emitted = 0;
    auto lookup = [&](I key) -> I {
        for (I i = 0; i < symcount; ++i) {
            if (symtab[i] == key)
                return i;
        }
        return -1;
    };
    for (I t = 0; t < 6000; ++t) {
        lcg(seed);
        const I phase = shr(t, 9) & 1;
        const I mask = phase ? 15 : 63;
        const I k = shr(seed, 16) & mask;
        I idx = -1;
        if ((t & 3) == 0) {
            idx = lookup(k);
            ++lookups;
        }
        if (idx < 0) {
            if (symcount < 64) {
                symtab[symcount] = k;
                ++symcount;
                ++inserts;
            }
        } else {
            emitted = emitted + idx;
        }
        if (phase) {
            if (k & 1)
                ++emitted;
        } else {
            if (k & 3)
                --emitted;
        }
        if (shr(seed, 17) & 1)
            emitted = emitted + 2;
        else
            emitted = emitted - 1;
        if (shr(seed, 21) & 1)
            lookups = lookups + 1;
        if (t & 512)
            inserts = inserts + 0;
        else
            emitted = emitted ^ 1;
        if ((shr(t, 7) & 1) == 0)
            emitted = emitted + 3;
    }
    w.expectedGlobals = {{"symcount", symcount},
                         {"lookups", lookups},
                         {"inserts", inserts},
                         {"emitted", emitted}};
    w.checkAccum = true;
    w.expectedAccum = emitted;
}

// ----------------------------------------------------------------- drc

const char* kDrc = R"(
/* VLSI design-rule-check proxy: pairwise rectangle overlap tests. */
int xlo[200];
int xhi[200];
int ylo[200];
int yhi[200];
int violations, checks, seed;

int main()
{
    int i, j, n, r;
    seed = 12345;
    n = 200;
    violations = 0;
    checks = 0;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        r = (seed >> 16) & 32767;
        xlo[i] = r % 1000;
        seed = seed * 1103515245 + 12345;
        r = (seed >> 16) & 32767;
        xhi[i] = xlo[i] + 1 + (r % 20);
        seed = seed * 1103515245 + 12345;
        r = (seed >> 16) & 32767;
        ylo[i] = r % 1000;
        seed = seed * 1103515245 + 12345;
        r = (seed >> 16) & 32767;
        yhi[i] = ylo[i] + 1 + (r % 20);
    }
    for (i = 1; i < n; i++) {
        for (j = 0; j < i; j++) {
            checks++;
            if (xlo[i] < xhi[j] && xlo[j] < xhi[i] &&
                ylo[i] < yhi[j] && ylo[j] < yhi[i]) {
                violations++;
            }
        }
    }
    return violations;
}
)";

void
drcMirror(Workload& w)
{
    I seed = 12345;
    const I n = 200;
    I xlo[200], xhi[200], ylo[200], yhi[200];
    I violations = 0, checks = 0;
    for (I i = 0; i < n; ++i) {
        I r = shr(lcg(seed), 16) & 32767;
        xlo[i] = r % 1000;
        r = shr(lcg(seed), 16) & 32767;
        xhi[i] = xlo[i] + 1 + (r % 20);
        r = shr(lcg(seed), 16) & 32767;
        ylo[i] = r % 1000;
        r = shr(lcg(seed), 16) & 32767;
        yhi[i] = ylo[i] + 1 + (r % 20);
    }
    for (I i = 1; i < n; ++i) {
        for (I j = 0; j < i; ++j) {
            ++checks;
            if (xlo[i] < xhi[j] && xlo[j] < xhi[i] && ylo[i] < yhi[j] &&
                ylo[j] < yhi[i]) {
                ++violations;
            }
        }
    }
    w.expectedGlobals = {{"violations", violations}, {"checks", checks}};
    w.checkAccum = true;
    w.expectedAccum = violations;
}

// ---------------------------------------------------------------- dhry

const char* kDhry = R"(
/* Dhrystone proxy: array shuffles, call chains, a predictable ladder
 * and one strictly alternating condition (the Table 1 signature where
 * static prediction beats one-bit dynamic history). */
int arr1[50];
int arr2[50];
int total;

int intcomp(int a, int b)
{
    if (a > b)
        return a - b;
    return b - a;
}

int func2(int x)
{
    if (x & 1)
        return x * 3 + 1;
    return x / 2;
}

int main()
{
    int run, i, x, y;
    total = 0;
    for (run = 0; run < 300; run++) {
        for (i = 0; i < 50; i++)
            arr1[i] = i + run;
        for (i = 0; i < 50; i++)
            arr2[i] = arr1[i] * 2;
        x = 0;
        y = 0;
        for (i = 0; i < 50; i++) {
            if (arr2[i] > arr1[i])
                x = x + intcomp(arr1[i], arr2[i]);
            if (i & 1)
                y = func2(i);
            else
                y = func2(i + run);
            if ((i >> 1) & 1)
                total++;
            total = total + (x & 7) - (y & 3);
        }
    }
    return total & 65535;
}
)";

void
dhryMirror(Workload& w)
{
    I arr1[50], arr2[50];
    I total = 0;
    auto intcomp = [](I a, I b) { return a > b ? a - b : b - a; };
    auto func2 = [](I x) { return (x & 1) ? x * 3 + 1 : x / 2; };
    for (I run = 0; run < 300; ++run) {
        for (I i = 0; i < 50; ++i)
            arr1[i] = i + run;
        for (I i = 0; i < 50; ++i)
            arr2[i] = arr1[i] * 2;
        I x = 0;
        I y = 0;
        for (I i = 0; i < 50; ++i) {
            if (arr2[i] > arr1[i])
                x = x + intcomp(arr1[i], arr2[i]);
            if (i & 1)
                y = func2(i);
            else
                y = func2(i + run);
            if ((i >> 1) & 1)
                ++total;
            total = total + (x & 7) - (y & 3);
        }
    }
    w.expectedGlobals = {{"total", total}};
    w.checkAccum = true;
    w.expectedAccum = total & 65535;
}

// --------------------------------------------------------------- cwhet

const char* kCwhet = R"(
/* Whetstone proxy (integer): arithmetic kernels in nested loops with
 * alternating and every-third-iteration conditions. */
int acc;

int main()
{
    int i, j, t, x;
    acc = 0;
    for (i = 1; i <= 3000; i++) {
        x = i & 1023;
        t = ((x * x) & 4095) - x;
        if (i % 3 == 0)
            acc += t;
        else
            acc -= t >> 1;
        if (i & 1)
            acc ^= x;
        for (j = 0; j < 8; j++)
            t = (t * 3 + 7) & 8191;
        acc += t & 15;
    }
    return acc & 1048575;
}
)";

void
cwhetMirror(Workload& w)
{
    I acc = 0;
    for (I i = 1; i <= 3000; ++i) {
        const I x = i & 1023;
        I t = ((x * x) & 4095) - x;
        if (i % 3 == 0)
            acc = static_cast<I>(static_cast<U>(acc) +
                                 static_cast<U>(t));
        else
            acc = static_cast<I>(static_cast<U>(acc) -
                                 static_cast<U>(shr(t, 1)));
        if (i & 1)
            acc ^= x;
        for (I j = 0; j < 8; ++j)
            t = (t * 3 + 7) & 8191;
        acc = static_cast<I>(static_cast<U>(acc) +
                             static_cast<U>(t & 15));
    }
    w.expectedGlobals = {{"acc", acc}};
    w.checkAccum = true;
    w.expectedAccum = acc & 1048575;
}

// -------------------------------------------------------------- puzzle

const char* kPuzzle = R"(
/* Puzzle proxy: N-queens exhaustive backtracking search. */
int colfree[16];
int diag1[32];
int diag2[32];
int solutions, nodes, n;

int place(int row)
{
    int c;
    if (row == n) {
        solutions++;
        return 0;
    }
    for (c = 0; c < n; c++) {
        if (colfree[c] == 0 && diag1[row + c] == 0 &&
            diag2[row - c + n] == 0) {
            colfree[c] = 1;
            diag1[row + c] = 1;
            diag2[row - c + n] = 1;
            nodes++;
            place(row + 1);
            colfree[c] = 0;
            diag1[row + c] = 0;
            diag2[row - c + n] = 0;
        }
    }
    return 0;
}

int main()
{
    n = 8;
    solutions = 0;
    nodes = 0;
    place(0);
    return solutions;
}
)";

void
puzzleMirror(Workload& w)
{
    I colfree[16] = {};
    I diag1[32] = {};
    I diag2[32] = {};
    I solutions = 0, nodes = 0;
    const I n = 8;
    auto place = [&](auto&& self, I row) -> void {
        if (row == n) {
            ++solutions;
            return;
        }
        for (I c = 0; c < n; ++c) {
            if (colfree[c] == 0 && diag1[row + c] == 0 &&
                diag2[row - c + n] == 0) {
                colfree[c] = 1;
                diag1[row + c] = 1;
                diag2[row - c + n] = 1;
                ++nodes;
                self(self, row + 1);
                colfree[c] = 0;
                diag1[row + c] = 0;
                diag2[row - c + n] = 0;
            }
        }
    };
    place(place, 0);
    w.expectedGlobals = {{"solutions", solutions}, {"nodes", nodes}};
    w.checkAccum = true;
    w.expectedAccum = solutions;
}


// --------------------------------------------------------------- sieve

const char* kSieve = R"(
/* Sieve of Eratosthenes: the classic mid-80s benchmark. */
int flags[4000];
int nprimes, lastprime;

int main()
{
    int i, k, n;
    n = 4000;
    nprimes = 0;
    lastprime = 0;
    for (i = 2; i < n; i++)
        flags[i] = 1;
    for (i = 2; i < n; i++) {
        if (flags[i]) {
            nprimes++;
            lastprime = i;
            for (k = i + i; k < n; k += i)
                flags[k] = 0;
        }
    }
    return nprimes;
}
)";

void
sieveMirror(Workload& w)
{
    static I flags[4000];
    const I n = 4000;
    I nprimes = 0, lastprime = 0;
    for (I i = 2; i < n; ++i)
        flags[i] = 1;
    for (I i = 2; i < n; ++i) {
        if (flags[i]) {
            ++nprimes;
            lastprime = i;
            for (I k = i + i; k < n; k += i)
                flags[k] = 0;
        }
    }
    w.expectedGlobals = {{"nprimes", nprimes}, {"lastprime", lastprime}};
    w.checkAccum = true;
    w.expectedAccum = nprimes;
}

// ---------------------------------------------------------------- sort

const char* kSort = R"(
/* Bubble sort over LCG data with a verification checksum. */
int data[150];
int swaps, checksum, seed;

int main()
{
    int i, j, t, n;
    n = 150;
    seed = 99;
    swaps = 0;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 16) & 1023;
    }
    for (i = 0; i < n - 1; i++) {
        for (j = 0; j < n - 1 - i; j++) {
            if (data[j] > data[j + 1]) {
                t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
                swaps++;
            }
        }
    }
    checksum = 0;
    for (i = 0; i < n; i++)
        checksum = (checksum * 31 + data[i]) & 1048575;
    return checksum;
}
)";

void
sortMirror(Workload& w)
{
    I data[150];
    const I n = 150;
    I seed = 99;
    I swaps = 0;
    for (I i = 0; i < n; ++i)
        data[i] = shr(lcg(seed), 16) & 1023;
    for (I i = 0; i < n - 1; ++i) {
        for (I j = 0; j < n - 1 - i; ++j) {
            if (data[j] > data[j + 1]) {
                const I t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
                ++swaps;
            }
        }
    }
    I checksum = 0;
    for (I i = 0; i < n; ++i) {
        checksum = static_cast<I>(
            (static_cast<U>(checksum) * 31u + static_cast<U>(data[i])) &
            1048575u);
    }
    w.expectedGlobals = {{"swaps", swaps}, {"checksum", checksum}};
    w.checkAccum = true;
    w.expectedAccum = checksum;
}

// -------------------------------------------------------------- matmul

const char* kMatmul = R"(
/* 12x12 integer matrix multiply. */
int ma[144];
int mb[144];
int mc[144];
int trace, seed;

int main()
{
    int i, j, k, acc, n;
    n = 12;
    seed = 5;
    for (i = 0; i < n * n; i++) {
        seed = seed * 1103515245 + 12345;
        ma[i] = (seed >> 16) & 63;
        seed = seed * 1103515245 + 12345;
        mb[i] = (seed >> 16) & 63;
    }
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            acc = 0;
            for (k = 0; k < n; k++)
                acc += ma[i * n + k] * mb[k * n + j];
            mc[i * n + j] = acc;
        }
    }
    trace = 0;
    for (i = 0; i < n; i++)
        trace += mc[i * n + i];
    return trace;
}
)";

void
matmulMirror(Workload& w)
{
    I ma[144], mb[144], mc[144];
    const I n = 12;
    I seed = 5;
    for (I i = 0; i < n * n; ++i) {
        ma[i] = shr(lcg(seed), 16) & 63;
        mb[i] = shr(lcg(seed), 16) & 63;
    }
    for (I i = 0; i < n; ++i) {
        for (I j = 0; j < n; ++j) {
            I acc = 0;
            for (I k = 0; k < n; ++k)
                acc += ma[i * n + k] * mb[k * n + j];
            mc[i * n + j] = acc;
        }
    }
    I trace = 0;
    for (I i = 0; i < n; ++i)
        trace += mc[i * n + i];
    w.expectedGlobals = {{"trace", trace}};
    w.checkAccum = true;
    w.expectedAccum = trace;
}

// ---------------------------------------------------------------- crc8

const char* kCrc8 = R"(
/* CRC-8 (reflected 0x8C) over an LCG byte stream, written in the
 * defensive style the dataflow optimizer targets: every masked value
 * is re-checked against its range, so the guards are provably
 * never-taken and the error counter is provably never written. */
int crc, bad, seed;

int main()
{
    int i, b, k, c, lim, n;
    seed = 7;
    c = 0;
    bad = 0;
    lim = 255;
    n = 96;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        b = (seed >> 16) & 255;
        if (b > lim)
            bad = bad + 1;
        c = c ^ b;
        for (k = 0; k < 8; k++) {
            if (c & 1)
                c = (c >> 1) ^ 140;
            else
                c = c >> 1;
        }
        c = c & 255;
        if (c > lim)
            bad = bad + 3;
    }
    crc = c;
    return crc;
}
)";

void
crc8Mirror(Workload& w)
{
    I seed = 7;
    I c = 0;
    I bad = 0;
    const I lim = 255;
    const I n = 96;
    for (I i = 0; i < n; ++i) {
        const I b = shr(lcg(seed), 16) & 255;
        if (b > lim)
            bad = bad + 1;
        c = c ^ b;
        for (I k = 0; k < 8; ++k) {
            if (c & 1)
                c = shr(c, 1) ^ 140;
            else
                c = shr(c, 1);
        }
        c = c & 255;
        if (c > lim)
            bad = bad + 3;
    }
    w.expectedGlobals = {{"crc", c}, {"bad", bad}};
    w.checkAccum = true;
    w.expectedAccum = c;
}

// --------------------------------------------------------------- quant

const char* kQuant = R"(
/* Fixed-point quantizer with a correlated clip flag: the clip guard
 * compares a value masked to [0,2047] against a 4095 limit, so the
 * flag stays 0 and the `if (clip)` cascade is unreachable — but only
 * an analysis that prunes the never-taken edge (SCCP) sees it; a
 * plain join over both branch edges still thinks clip may be 1. */
int acc, clips, seed;

int main()
{
    int i, v, q, clip, limit, n, dead;
    seed = 3;
    acc = 0;
    clips = 0;
    limit = 4095;
    n = 80;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        v = (seed >> 16) & 2047;
        clip = 0;
        if (v > limit)
            clip = 1;
        if (clip) {
            clips = clips + 1;
            v = limit;
        }
        q = v >> 4;
        dead = q * 3;
        acc = acc + q;
    }
    return acc & 65535;
}
)";

void
quantMirror(Workload& w)
{
    I seed = 3;
    I acc = 0;
    I clips = 0;
    const I limit = 4095;
    const I n = 80;
    for (I i = 0; i < n; ++i) {
        I v = shr(lcg(seed), 16) & 2047;
        I clip = 0;
        if (v > limit)
            clip = 1;
        if (clip) {
            clips = clips + 1;
            v = limit;
        }
        const I q = shr(v, 4);
        acc = static_cast<I>(static_cast<U>(acc) + static_cast<U>(q));
    }
    w.expectedGlobals = {{"acc", acc}, {"clips", clips}};
    w.checkAccum = true;
    w.expectedAccum = acc & 65535;
}

// ----------------------------------------------------------------- lex

const char* kLex = R"(
/* Call-free token scanner with a compile-time-disabled debug mode:
 * the `debug` flag is a dead constant 0, so its branch is provably
 * never taken, and the range guard on the masked character class is
 * never taken either. */
int ntok, nskip, seed;

int main()
{
    int i, ch, state, debug, n, t;
    seed = 11;
    ntok = 0;
    nskip = 0;
    debug = 0;
    state = 0;
    n = 200;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        ch = (seed >> 16) & 127;
        if (debug)
            nskip = nskip + 1;
        if (ch < 33) {
            state = 0;
        } else {
            if (state == 0)
                ntok = ntok + 1;
            state = 1;
        }
        t = ch;
        if (t > 127)
            nskip = nskip + 5;
    }
    return ntok;
}
)";

void
lexMirror(Workload& w)
{
    I seed = 11;
    I ntok = 0;
    I nskip = 0;
    I state = 0;
    const I n = 200;
    for (I i = 0; i < n; ++i) {
        const I ch = shr(lcg(seed), 16) & 127;
        if (ch < 33) {
            state = 0;
        } else {
            if (state == 0)
                ntok = ntok + 1;
            state = 1;
        }
    }
    w.expectedGlobals = {{"ntok", ntok}, {"nskip", nskip}};
    w.checkAccum = true;
    w.expectedAccum = ntok;
}

// ------------------------------------------------------------- vmtrace

const char* kVmtrace = R"(
/* Byte-coded accumulator VM: the hot loop dispatches through a dense
 * jump table whose value set the target analysis proves exactly, while
 * the trace decoder behind the constant-zero `trace` flag is provably
 * unreachable, so its indirect dispatch carries a vacuous [0,0] delay
 * bound instead of the generic two-cycle indirect charge. */
int acc, steps;

int main()
{
    int pc, op, trace, n;
    acc = 0;
    steps = 0;
    trace = 0;
    n = 96;
    for (pc = 0; pc < n; pc = pc + 1) {
        op = pc - (pc / 4) * 4;
        if (trace) {
            switch (op) {
                case 0: steps = steps + 10; break;
                case 1: steps = steps + 20; break;
                case 2: steps = steps + 30; break;
                default: steps = steps + 40; break;
            }
        }
        switch (op) {
            case 0: acc = acc + 1; break;
            case 1: acc = acc + pc; break;
            case 2: acc = acc - 1; break;
            default: acc = acc + 2; break;
        }
        steps = steps + 1;
    }
    return acc & 65535;
}
)";

void
vmtraceMirror(Workload& w)
{
    I acc = 0;
    I steps = 0;
    const I n = 96;
    for (I pc = 0; pc < n; ++pc) {
        const I op = pc % 4;
        if (op == 0)
            acc = acc + 1;
        else if (op == 1)
            acc = acc + pc;
        else if (op == 2)
            acc = acc - 1;
        else
            acc = acc + 2;
        steps = steps + 1;
    }
    w.expectedGlobals = {{"acc", acc}, {"steps", steps}};
    w.checkAccum = true;
    w.expectedAccum = acc & 65535;
}

// -------------------------------------------------------------- vmmode

const char* kVmmode = R"(
/* Mode-dispatched filter: `mode` is stored once and never written
 * again, so the value-set analysis proves the jump-table slot it
 * selects holds the only reachable target; crispcc -O devirtualizes
 * the dispatch into a direct branch and the per-iteration two-cycle
 * indirect retire charge disappears from the cost envelope. */
int acc, mode;

int main()
{
    int i, n;
    mode = 2;
    acc = 0;
    n = 120;
    for (i = 0; i < n; i = i + 1) {
        switch (mode) {
            case 0: acc = acc + 1; break;
            case 1: acc = acc + 3; break;
            case 2: acc = acc + i; break;
            default: acc = acc - 1; break;
        }
    }
    return acc & 65535;
}
)";

void
vmmodeMirror(Workload& w)
{
    I acc = 0;
    const I n = 120;
    for (I i = 0; i < n; ++i)
        acc = acc + i;
    w.expectedGlobals = {{"acc", acc}, {"mode", 2}};
    w.checkAccum = true;
    w.expectedAccum = acc & 65535;
}

} // namespace

std::string
fig3Source(int loops)
{
    std::string src = kFig3Template;
    const std::string key = "LOOPS";
    const auto at = src.find(key);
    src.replace(at, key.size(), std::to_string(loops));
    return src;
}

Word
fig3Expected(int loops)
{
    U sum = 0;
    for (I i = 0; i < loops; ++i)
        sum += static_cast<U>(i);
    return static_cast<Word>(sum);
}

const std::vector<Workload>&
allWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> ws;

        {
            Workload w;
            w.name = "fig3";
            w.description = "the paper's Figure 3 loop (1024 iterations)";
            w.source = fig3Source(1024);
            w.checkAccum = true;
            w.expectedAccum = fig3Expected(1024);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "troff";
            w.description = "text-processor proxy (skewed branches)";
            w.source = kTroff;
            troffMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "ccomp";
            w.description = "C-compiler proxy (phased, irregular "
                            "branches)";
            w.source = kCcomp;
            ccompMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "drc";
            w.description = "VLSI design-rule-check proxy (skewed "
                            "comparisons)";
            w.source = kDrc;
            drcMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "dhry";
            w.description = "Dhrystone proxy (alternating condition)";
            w.source = kDhry;
            dhryMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "cwhet";
            w.description = "integer Whetstone proxy";
            w.source = kCwhet;
            cwhetMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "sieve";
            w.description = "sieve of Eratosthenes (4000)";
            w.source = kSieve;
            sieveMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "sort";
            w.description = "bubble sort, 150 LCG elements";
            w.source = kSort;
            sortMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "matmul";
            w.description = "12x12 integer matrix multiply";
            w.source = kMatmul;
            matmulMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "puzzle";
            w.description = "Puzzle proxy: 8-queens backtracking";
            w.source = kPuzzle;
            puzzleMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "crc8";
            w.description = "CRC-8 kernel with never-taken range "
                            "guards";
            w.source = kCrc8;
            crc8Mirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "quant";
            w.description = "fixed-point quantizer with a correlated "
                            "clip cascade (SCCP-only)";
            w.source = kQuant;
            quantMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "lex";
            w.description = "call-free scanner with a disabled debug "
                            "mode";
            w.source = kLex;
            lexMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "vmtrace";
            w.description = "byte-coded VM with a live dense dispatch "
                            "and a dead trace decoder";
            w.source = kVmtrace;
            vmtraceMirror(w);
            ws.push_back(std::move(w));
        }
        {
            Workload w;
            w.name = "vmmode";
            w.description = "mode-dispatched filter whose jump table "
                            "devirtualizes to a direct branch";
            w.source = kVmmode;
            vmmodeMirror(w);
            ws.push_back(std::move(w));
        }
        return ws;
    }();
    return workloads;
}

const Workload&
workload(const std::string& name)
{
    for (const Workload& w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    throw CrispError("unknown workload: " + name);
}

} // namespace crisp
