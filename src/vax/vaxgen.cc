/**
 * @file
 * CRISP-C -> VAX-like code generation (the Table 2 comparator backend).
 *
 * Style notes that make the output match a 1980s VAX C compiler —
 * and therefore the paper's Table 2 histogram:
 *  - locals live in registers (r2 upward; temporaries from r11 down);
 *  - loops are TOP-tested with an unconditional jbr backedge (this is
 *    where the paper's 1,536 jbr / 1,025 jgeq counts come from);
 *  - `x++` is incl, `x = 0` is clrl, `if (a & b)` is bitl/jeql;
 *  - conditions use the N/Z codes that nearly every instruction sets.
 */

#include <map>
#include <optional>
#include <vector>

#include "cc/ast.hh"
#include "vax.hh"

namespace crisp::vax
{

namespace
{

using cc::BinOp;
using cc::Expr;
using cc::ExprKind;
using cc::FuncDecl;
using cc::Stmt;
using cc::StmtKind;
using cc::UnOp;

[[noreturn]] void
err(int line, const std::string& msg)
{
    throw CrispError("vaxcc line " + std::to_string(line) + ": " + msg);
}

class VaxGen
{
  public:
    explicit VaxGen(const cc::TranslationUnit& tu) : tu_(tu)
    {
        for (const auto& g : tu.globals) {
            globalIndex_[g.name] = {
                static_cast<std::int32_t>(prog_.globalInit.size()),
                g.arraySize};
            prog_.globalIndex[g.name] =
                static_cast<std::int32_t>(prog_.globalInit.size());
            if (g.arraySize > 0) {
                prog_.globalInit.insert(
                    prog_.globalInit.end(),
                    static_cast<std::size_t>(g.arraySize), 0);
            } else {
                prog_.globalInit.push_back(g.init);
            }
        }
        for (const FuncDecl& f : tu.functions)
            arity_[f.name] = static_cast<int>(f.params.size());
    }

    VaxProgram
    run()
    {
        // Entry stub: calls main; halt.
        const int call_idx =
            emit({VOp::kCalls, {}, VOperand::imm(0), -1});
        emit({VOp::kHalt, {}, {}, -1});
        for (const FuncDecl& f : tu_.functions) {
            funcEntry_[f.name] =
                static_cast<int>(prog_.code.size());
            genFunction(f);
        }
        if (!funcEntry_.count("main"))
            throw CrispError("vaxcc: no main() function");
        prog_.code[static_cast<std::size_t>(call_idx)].target =
            funcEntry_.at("main");
        for (const auto& [idx, name] : pendingCalls_) {
            const auto it = funcEntry_.find(name);
            if (it == funcEntry_.end())
                throw CrispError("vax: undefined function " + name);
            prog_.code[static_cast<std::size_t>(idx)].target =
                it->second;
        }
        // Resolve label placeholders.
        for (VInst& in : prog_.code) {
            if (in.target < -1)
                in.target = labelPos_.at(
                    static_cast<std::size_t>(-in.target - 2));
        }
        prog_.entry = 0;
        return std::move(prog_);
    }

  private:
    // Emission ---------------------------------------------------------

    int
    emit(VInst in)
    {
        prog_.code.push_back(in);
        return static_cast<int>(prog_.code.size()) - 1;
    }

    /** New label id, encoded as a negative placeholder target. */
    int
    newLabel()
    {
        labelPos_.push_back(-1);
        return -(static_cast<int>(labelPos_.size()) - 1) - 2;
    }

    void
    place(int label)
    {
        labelPos_[static_cast<std::size_t>(-label - 2)] =
            static_cast<int>(prog_.code.size());
    }

    void
    branch(VOp op, int label)
    {
        emit({op, {}, {}, label});
    }

    // Registers ----------------------------------------------------------

    int
    allocLocal(int line)
    {
        if (nextLocal_ > 9)
            err(line, "too many locals for the register-based VAX "
                      "backend");
        return nextLocal_++;
    }

    int
    allocTemp(int line)
    {
        if (!freeTemps_.empty()) {
            const int r = freeTemps_.back();
            freeTemps_.pop_back();
            return r;
        }
        if (nextTemp_ < nextLocal_)
            err(line, "expression too deep for the register-based VAX "
                      "backend");
        return nextTemp_--;
    }

    void
    release(const VOperand& o, bool owned)
    {
        if (owned && o.kind == VOperand::Kind::kReg)
            freeTemps_.push_back(o.reg);
    }

    // Values ---------------------------------------------------------------

    struct Val
    {
        VOperand op;
        bool ownedTemp = false;
    };

    std::optional<std::int32_t>
    constEval(const Expr& e) const
    {
        if (e.kind == ExprKind::kNumber)
            return e.number;
        return std::nullopt; // full folding lives in the CRISP backend
    }

    VOperand
    lvalue(const Expr& e, std::vector<Val>& scratch)
    {
        if (e.kind == ExprKind::kVar) {
            const auto it = locals_.find(e.name);
            if (it != locals_.end())
                return VOperand::r(it->second);
            const auto g = globalIndex_.find(e.name);
            if (g != globalIndex_.end()) {
                if (g->second.second > 0)
                    err(e.line, "array used without subscript");
                return VOperand::mem(g->second.first);
            }
            err(e.line, "undefined variable: " + e.name);
        }
        if (e.kind == ExprKind::kIndex) {
            const auto g = globalIndex_.find(e.name);
            if (g == globalIndex_.end() || g->second.second == 0)
                err(e.line, "subscript of non-array: " + e.name);
            Val idx = value(*e.rhs);
            if (idx.op.kind != VOperand::Kind::kReg || !idx.ownedTemp) {
                const int t = allocTemp(e.line);
                emit({VOp::kMovl, VOperand::r(t), idx.op, -1});
                release(idx.op, idx.ownedTemp);
                idx = {VOperand::r(t), true};
            }
            scratch.push_back(idx); // caller releases after use
            return VOperand::idx(g->second.first, idx.op.reg);
        }
        err(e.line, "not an lvalue");
    }

    static std::optional<VOp>
    binVop(BinOp op)
    {
        switch (op) {
          case BinOp::kAdd: return VOp::kAddl2;
          case BinOp::kSub: return VOp::kSubl2;
          case BinOp::kMul: return VOp::kMull2;
          case BinOp::kDiv: return VOp::kDivl2;
          case BinOp::kOr:  return VOp::kBisl2;
          case BinOp::kXor: return VOp::kXorl2;
          case BinOp::kAnd: return VOp::kBicl2;
          default: return std::nullopt;
        }
    }

    /** Compute an expression into an operand. */
    Val
    value(const Expr& e)
    {
        if (const auto c = constEval(e))
            return {VOperand::imm(*c), false};

        switch (e.kind) {
          case ExprKind::kVar: {
            std::vector<Val> scratch;
            return {lvalue(e, scratch), false};
          }
          case ExprKind::kIndex: {
            // Load through a temp so the index register can retire.
            std::vector<Val> scratch;
            const VOperand src = lvalue(e, scratch);
            const int t = allocTemp(e.line);
            emit({VOp::kMovl, VOperand::r(t), src, -1});
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return {VOperand::r(t), true};
          }
          case ExprKind::kAssign:
            return assign(e);
          case ExprKind::kCall:
            return call(e);
          case ExprKind::kPreIncDec: {
            std::vector<Val> scratch;
            const VOperand dst = lvalue(*e.lhs, scratch);
            emit({e.increment ? VOp::kIncl : VOp::kDecl, dst, {}, -1});
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return {dst, false};
          }
          case ExprKind::kPostIncDec: {
            std::vector<Val> scratch;
            const VOperand dst = lvalue(*e.lhs, scratch);
            const int t = allocTemp(e.line);
            emit({VOp::kMovl, VOperand::r(t), dst, -1});
            emit({e.increment ? VOp::kIncl : VOp::kDecl, dst, {}, -1});
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return {VOperand::r(t), true};
          }
          case ExprKind::kUnary:
            switch (e.unop) {
              case UnOp::kNeg: {
                Val v = value(*e.lhs);
                const int t = allocTemp(e.line);
                emit({VOp::kClrl, VOperand::r(t), {}, -1});
                emit({VOp::kSubl2, VOperand::r(t), v.op, -1});
                release(v.op, v.ownedTemp);
                return {VOperand::r(t), true};
              }
              case UnOp::kBitNot: {
                Val v = value(*e.lhs);
                const int t = allocTemp(e.line);
                emit({VOp::kMovl, VOperand::r(t), v.op, -1});
                emit({VOp::kXorl2, VOperand::r(t), VOperand::imm(-1),
                      -1});
                release(v.op, v.ownedTemp);
                return {VOperand::r(t), true};
              }
              case UnOp::kNot:
                return boolValue(e);
            }
            break;
          case ExprKind::kTernary: {
            const int t = allocTemp(e.line);
            const int els = newLabel();
            const int end = newLabel();
            condBranch(*e.lhs, els, false);
            {
                Val a = value(*e.rhs);
                emit({VOp::kMovl, VOperand::r(t), a.op, -1});
                release(a.op, a.ownedTemp);
            }
            branch(VOp::kJbr, end);
            place(els);
            {
                Val b = value(*e.third);
                emit({VOp::kMovl, VOperand::r(t), b.op, -1});
                release(b.op, b.ownedTemp);
            }
            place(end);
            return {VOperand::r(t), true};
          }
          case ExprKind::kBinary: {
            if (e.binop >= BinOp::kEq && e.binop <= BinOp::kLOr)
                return boolValue(e);
            if (e.binop == BinOp::kRem) {
                // a % b via div/mul/sub (VAX EDIV is not modeled).
                Val a = value(*e.lhs);
                Val b = value(*e.rhs);
                const int q = allocTemp(e.line);
                const int r = allocTemp(e.line);
                emit({VOp::kMovl, VOperand::r(q), a.op, -1});
                emit({VOp::kDivl2, VOperand::r(q), b.op, -1});
                emit({VOp::kMull2, VOperand::r(q), b.op, -1});
                emit({VOp::kMovl, VOperand::r(r), a.op, -1});
                emit({VOp::kSubl2, VOperand::r(r), VOperand::r(q), -1});
                release(a.op, a.ownedTemp);
                release(b.op, b.ownedTemp);
                freeTemps_.push_back(q);
                return {VOperand::r(r), true};
            }
            if (e.binop == BinOp::kShl || e.binop == BinOp::kShr) {
                Val a = value(*e.lhs);
                Val b = value(*e.rhs);
                const int t = allocTemp(e.line);
                emit({VOp::kMovl, VOperand::r(t), a.op, -1});
                if (b.op.kind == VOperand::Kind::kImm) {
                    const std::int32_t n = e.binop == BinOp::kShl
                                               ? b.op.value
                                               : -b.op.value;
                    emit({VOp::kAshl, VOperand::r(t), VOperand::imm(n),
                          -1});
                } else if (e.binop == BinOp::kShl) {
                    emit({VOp::kAshl, VOperand::r(t), b.op, -1});
                } else {
                    const int n = allocTemp(e.line);
                    emit({VOp::kClrl, VOperand::r(n), {}, -1});
                    emit({VOp::kSubl2, VOperand::r(n), b.op, -1});
                    emit({VOp::kAshl, VOperand::r(t), VOperand::r(n),
                          -1});
                    freeTemps_.push_back(n);
                }
                release(a.op, a.ownedTemp);
                release(b.op, b.ownedTemp);
                return {VOperand::r(t), true};
            }
            const auto vop = binVop(e.binop);
            if (!vop)
                err(e.line, "operator unsupported by the VAX backend");
            Val a = value(*e.lhs);
            Val b = value(*e.rhs);
            const int t = allocTemp(e.line);
            emit({VOp::kMovl, VOperand::r(t), a.op, -1});
            emit({*vop, VOperand::r(t), b.op, -1});
            release(a.op, a.ownedTemp);
            release(b.op, b.ownedTemp);
            return {VOperand::r(t), true};
          }
          default:
            break;
        }
        err(e.line, "cannot generate VAX code for expression");
    }

    /** Expression statement: evaluate for side effects only. */
    void
    discard(const Expr& e)
    {
        if (e.kind == ExprKind::kPreIncDec ||
            e.kind == ExprKind::kPostIncDec) {
            // No old-value temp when the result is unused: bare incl.
            std::vector<Val> scratch;
            const VOperand dst = lvalue(*e.lhs, scratch);
            emit({e.increment ? VOp::kIncl : VOp::kDecl, dst, {}, -1});
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return;
        }
        Val v = value(e);
        release(v.op, v.ownedTemp);
    }

    Val
    assign(const Expr& e)
    {
        std::vector<Val> scratch;
        if (e.binop != BinOp::kNone) {
            Val rv = value(*e.rhs);
            const VOperand dst = lvalue(*e.lhs, scratch);
            if (e.binop == BinOp::kShl || e.binop == BinOp::kShr ||
                e.binop == BinOp::kRem) {
                // Rewrite as dst = dst OP rhs through the general path.
                const int t = allocTemp(e.line);
                emit({VOp::kMovl, VOperand::r(t), dst, -1});
                if (e.binop == BinOp::kRem) {
                    const int q = allocTemp(e.line);
                    emit({VOp::kMovl, VOperand::r(q), VOperand::r(t),
                          -1});
                    emit({VOp::kDivl2, VOperand::r(q), rv.op, -1});
                    emit({VOp::kMull2, VOperand::r(q), rv.op, -1});
                    emit({VOp::kSubl2, VOperand::r(t), VOperand::r(q),
                          -1});
                    freeTemps_.push_back(q);
                } else if (rv.op.kind == VOperand::Kind::kImm) {
                    const std::int32_t n = e.binop == BinOp::kShl
                                               ? rv.op.value
                                               : -rv.op.value;
                    emit({VOp::kAshl, VOperand::r(t), VOperand::imm(n),
                          -1});
                } else if (e.binop == BinOp::kShl) {
                    emit({VOp::kAshl, VOperand::r(t), rv.op, -1});
                } else {
                    const int n = allocTemp(e.line);
                    emit({VOp::kClrl, VOperand::r(n), {}, -1});
                    emit({VOp::kSubl2, VOperand::r(n), rv.op, -1});
                    emit({VOp::kAshl, VOperand::r(t), VOperand::r(n),
                          -1});
                    freeTemps_.push_back(n);
                }
                emit({VOp::kMovl, dst, VOperand::r(t), -1});
                freeTemps_.push_back(t);
            } else {
                const auto vop = binVop(e.binop);
                if (!vop)
                    err(e.line, "compound operator unsupported");
                if (e.binop == BinOp::kAdd &&
                    rv.op.kind == VOperand::Kind::kImm &&
                    rv.op.value == 1) {
                    emit({VOp::kIncl, dst, {}, -1});
                } else if (e.binop == BinOp::kSub &&
                           rv.op.kind == VOperand::Kind::kImm &&
                           rv.op.value == 1) {
                    emit({VOp::kDecl, dst, {}, -1});
                } else {
                    emit({*vop, dst, rv.op, -1});
                }
            }
            release(rv.op, rv.ownedTemp);
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return {dst, false};
        }

        // Plain assignment; fuse `x = x OP y` and x = 0 -> clrl.
        const Expr& rhs = *e.rhs;
        if (const auto c = constEval(rhs); c && *c == 0) {
            const VOperand dst = lvalue(*e.lhs, scratch);
            emit({VOp::kClrl, dst, {}, -1});
            for (Val& s : scratch)
                release(s.op, s.ownedTemp);
            return {dst, false};
        }
        if (rhs.kind == ExprKind::kBinary &&
            e.lhs->kind == ExprKind::kVar &&
            rhs.lhs->kind == ExprKind::kVar &&
            rhs.lhs->name == e.lhs->name) {
            if (const auto vop = binVop(rhs.binop)) {
                Val rv = value(*rhs.rhs);
                const VOperand dst = lvalue(*e.lhs, scratch);
                if (rhs.binop == BinOp::kAdd &&
                    rv.op.kind == VOperand::Kind::kImm &&
                    rv.op.value == 1) {
                    emit({VOp::kIncl, dst, {}, -1});
                } else {
                    emit({*vop, dst, rv.op, -1});
                }
                release(rv.op, rv.ownedTemp);
                return {dst, false};
            }
        }
        Val rv = value(rhs);
        const VOperand dst = lvalue(*e.lhs, scratch);
        emit({VOp::kMovl, dst, rv.op, -1});
        release(rv.op, rv.ownedTemp);
        for (Val& s : scratch)
            release(s.op, s.ownedTemp);
        return {dst, false};
    }

    Val
    call(const Expr& e)
    {
        const auto it = arity_.find(e.name);
        if (it == arity_.end())
            err(e.line, "undefined function: " + e.name);
        if (static_cast<int>(e.args.size()) != it->second)
            err(e.line, "wrong argument count for " + e.name);

        // VAX CALLS convention: arguments go through the stack
        // (pushl), so evaluating them never clobbers caller registers;
        // CALLS saves the register file and pops the arguments into
        // the callee's r2.. frame.
        for (const auto& a : e.args) {
            Val v = value(*a);
            emit({VOp::kPushl, v.op, {}, -1});
            release(v.op, v.ownedTemp);
        }
        const int ci =
            emit({VOp::kCalls, {},
                  VOperand::imm(static_cast<std::int32_t>(
                      e.args.size())),
                  -1});
        pendingCalls_.emplace_back(ci, e.name);
        return {VOperand::r(0), false};
    }

    Val
    boolValue(const Expr& e)
    {
        const int t = allocTemp(e.line);
        const int end = newLabel();
        emit({VOp::kMovl, VOperand::r(t), VOperand::imm(1), -1});
        condBranch(e, end, true);
        emit({VOp::kClrl, VOperand::r(t), {}, -1});
        place(end);
        return {VOperand::r(t), true};
    }

    /** Branch to @p label when truth(e) == branch_if_true. */
    void
    condBranch(const Expr& e, int label, bool branch_if_true)
    {
        if (const auto c = constEval(e)) {
            if ((*c != 0) == branch_if_true)
                branch(VOp::kJbr, label);
            return;
        }
        if (e.kind == ExprKind::kUnary && e.unop == UnOp::kNot) {
            condBranch(*e.lhs, label, !branch_if_true);
            return;
        }
        if (e.kind == ExprKind::kBinary && e.binop == BinOp::kLAnd) {
            if (branch_if_true) {
                const int skip = newLabel();
                condBranch(*e.lhs, skip, false);
                condBranch(*e.rhs, label, true);
                place(skip);
            } else {
                condBranch(*e.lhs, label, false);
                condBranch(*e.rhs, label, false);
            }
            return;
        }
        if (e.kind == ExprKind::kBinary && e.binop == BinOp::kLOr) {
            if (branch_if_true) {
                condBranch(*e.lhs, label, true);
                condBranch(*e.rhs, label, true);
            } else {
                const int skip = newLabel();
                condBranch(*e.lhs, skip, true);
                condBranch(*e.rhs, label, false);
                place(skip);
            }
            return;
        }
        if (e.kind == ExprKind::kBinary && e.binop >= BinOp::kEq &&
            e.binop <= BinOp::kGe) {
            Val a = value(*e.lhs);
            Val b = value(*e.rhs);
            emit({VOp::kCmpl, a.op, b.op, -1});
            release(a.op, a.ownedTemp);
            release(b.op, b.ownedTemp);
            VOp j = VOp::kJeql;
            switch (e.binop) {
              case BinOp::kEq: j = branch_if_true ? VOp::kJeql : VOp::kJneq; break;
              case BinOp::kNe: j = branch_if_true ? VOp::kJneq : VOp::kJeql; break;
              case BinOp::kLt: j = branch_if_true ? VOp::kJlss : VOp::kJgeq; break;
              case BinOp::kGe: j = branch_if_true ? VOp::kJgeq : VOp::kJlss; break;
              case BinOp::kLe: j = branch_if_true ? VOp::kJleq : VOp::kJgtr; break;
              case BinOp::kGt: j = branch_if_true ? VOp::kJgtr : VOp::kJleq; break;
              default: break;
            }
            branch(j, label);
            return;
        }
        if (e.kind == ExprKind::kBinary && e.binop == BinOp::kAnd) {
            // The paper's `if (i & 1)` idiom: bitl sets Z only.
            Val a = value(*e.lhs);
            Val b = value(*e.rhs);
            emit({VOp::kBitl, a.op, b.op, -1});
            release(a.op, a.ownedTemp);
            release(b.op, b.ownedTemp);
            branch(branch_if_true ? VOp::kJneq : VOp::kJeql, label);
            return;
        }
        Val v = value(e);
        emit({VOp::kTstl, v.op, {}, -1});
        release(v.op, v.ownedTemp);
        branch(branch_if_true ? VOp::kJneq : VOp::kJeql, label);
    }

    // Statements -------------------------------------------------------

    struct Loop
    {
        int breakLabel;
        int continueLabel; // -1 for switch frames
    };

    void
    stmt(const Stmt& s)
    {
        switch (s.kind) {
          case StmtKind::kEmpty:
            return;
          case StmtKind::kBlock: {
            const auto saved = locals_;
            for (const auto& sub : s.stmts)
                stmt(*sub);
            locals_ = saved;
            return;
          }
          case StmtKind::kDecl: {
            const int r = allocLocal(s.line);
            locals_[s.name] = r;
            if (s.init) {
                Val v = value(*s.init);
                if (v.op.kind == VOperand::Kind::kImm && v.op.value == 0)
                    emit({VOp::kClrl, VOperand::r(r), {}, -1});
                else
                    emit({VOp::kMovl, VOperand::r(r), v.op, -1});
                release(v.op, v.ownedTemp);
            }
            return;
          }
          case StmtKind::kExpr:
            discard(*s.expr);
            return;
          case StmtKind::kIf: {
            const int els = newLabel();
            condBranch(*s.cond, els, false);
            stmt(*s.body);
            if (s.elseBody) {
                const int end = newLabel();
                branch(VOp::kJbr, end);
                place(els);
                stmt(*s.elseBody);
                place(end);
            } else {
                place(els);
            }
            return;
          }
          case StmtKind::kWhile:
            loop(nullptr, nullptr, s.cond.get(), nullptr, *s.body);
            return;
          case StmtKind::kFor:
            loop(s.initStmt.get(), s.init.get(), s.cond.get(),
                 s.step.get(), *s.body);
            return;
          case StmtKind::kDoWhile: {
            const int top = newLabel();
            const int cont = newLabel();
            const int brk = newLabel();
            loops_.push_back({brk, cont});
            place(top);
            stmt(*s.body);
            place(cont);
            condBranch(*s.cond, top, true);
            place(brk);
            loops_.pop_back();
            return;
          }
          case StmtKind::kSwitch: {
            // Compare-chain lowering (no VAX CASEL model).
            const int end = newLabel();
            Val v = value(*s.expr);
            VOperand sel = v.op;
            if (sel.kind != VOperand::Kind::kReg) {
                const int t = allocTemp(s.line);
                emit({VOp::kMovl, VOperand::r(t), sel, -1});
                release(v.op, v.ownedTemp);
                sel = VOperand::r(t);
                v = {sel, true};
            }
            std::map<std::size_t, int> markers;
            int default_label = -1;
            for (std::size_t i = 0; i < s.stmts.size(); ++i) {
                if (s.stmts[i]->kind != StmtKind::kCaseLabel)
                    continue;
                const int l = newLabel();
                markers[i] = l;
                if (s.stmts[i]->expr) {
                    emit({VOp::kCmpl, sel,
                          VOperand::imm(s.stmts[i]->expr->number), -1});
                    branch(VOp::kJeql, l);
                } else {
                    default_label = l;
                }
            }
            release(v.op, v.ownedTemp);
            branch(VOp::kJbr,
                   default_label >= 0 ? default_label : end);
            loops_.push_back({end, -1});
            for (std::size_t i = 0; i < s.stmts.size(); ++i) {
                const auto m = markers.find(i);
                if (m != markers.end())
                    place(m->second);
                else if (s.stmts[i]->kind != StmtKind::kCaseLabel)
                    stmt(*s.stmts[i]);
            }
            loops_.pop_back();
            place(end);
            return;
          }
          case StmtKind::kCaseLabel:
            err(s.line, "case label outside switch");
          case StmtKind::kReturn: {
            if (s.expr) {
                Val v = value(*s.expr);
                emit({VOp::kMovl, VOperand::r(0), v.op, -1});
                release(v.op, v.ownedTemp);
            }
            emit({VOp::kRet, {}, {}, -1});
            return;
          }
          case StmtKind::kBreak:
            if (loops_.empty())
                err(s.line, "break outside loop");
            branch(VOp::kJbr, loops_.back().breakLabel);
            return;
          case StmtKind::kContinue: {
            for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
                if (it->continueLabel != -1) {
                    branch(VOp::kJbr, it->continueLabel);
                    return;
                }
            }
            err(s.line, "continue outside loop");
          }
        }
    }

    /** TOP-tested loop, VAX-compiler style. */
    void
    loop(const Stmt* init_stmt, const Expr* init_expr, const Expr* cond,
         const Expr* step, const Stmt& body)
    {
        const auto saved = locals_;
        if (init_stmt != nullptr) {
            for (const auto& d : init_stmt->stmts)
                stmt(*d);
        } else if (init_expr != nullptr) {
            discard(*init_expr);
        }

        const int test = newLabel();
        const int cont = newLabel();
        const int brk = newLabel();
        loops_.push_back({brk, cont});
        place(test);
        if (cond != nullptr)
            condBranch(*cond, brk, false);
        stmt(body);
        place(cont);
        if (step != nullptr)
            discard(*step);
        branch(VOp::kJbr, test);
        place(brk);
        loops_.pop_back();
        locals_ = saved;
    }

    void
    genFunction(const FuncDecl& f)
    {
        locals_.clear();
        freeTemps_.clear();
        nextLocal_ = 2;
        nextTemp_ = 11;
        for (const std::string& p : f.params)
            locals_[p] = allocLocal(f.line);
        stmt(*f.body);
        emit({VOp::kRet, {}, {}, -1}); // fall-off-the-end return
    }

    const cc::TranslationUnit& tu_;
    VaxProgram prog_;
    std::map<std::string, std::pair<std::int32_t, std::int32_t>>
        globalIndex_; // name -> (word index, array size)
    std::map<std::string, int> arity_;
    std::map<std::string, int> funcEntry_;
    std::vector<std::pair<int, std::string>> pendingCalls_;
    std::vector<int> labelPos_;
    std::map<std::string, int> locals_;
    std::vector<int> freeTemps_;
    std::vector<Loop> loops_;
    int nextLocal_ = 2;
    int nextTemp_ = 11;
};

} // namespace

VaxProgram
compileForVax(const std::string& source)
{
    const cc::TranslationUnit tu = cc::parse(source);
    return VaxGen(tu).run();
}

} // namespace crisp::vax
