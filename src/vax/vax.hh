/**
 * @file
 * A VAX-like CISC comparator machine for the paper's Table 2.
 *
 * The paper compares CRISP's dynamic instruction count for the Figure 3
 * program against a VAX compiled "directly from our standard
 * compilers", finding essentially identical totals (9,734 vs 9,736).
 * This module models just enough of a VAX-11-style machine to
 * regenerate that column: a register machine whose condition codes are
 * set by most instructions, with the exact opcodes in the paper's
 * histogram (incl, jbr, movl, cmpl, jgeq, addl2, bitl, jeql, clrl,
 * ret, subl2) plus the few needed to run the wider workload suite.
 *
 * It is an instruction-level functional model (Table 2 counts
 * instructions, not cycles); there is no binary encoding and no
 * pipeline.
 */

#ifndef CRISP_VAX_VAX_HH
#define CRISP_VAX_VAX_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/types.hh"

namespace crisp::vax
{

enum class VOp : std::uint8_t {
    kMovl = 0, //!< move longword (sets N/Z)
    kClrl,     //!< clear longword
    kIncl,     //!< increment
    kDecl,     //!< decrement
    kAddl2,    //!< dst += src
    kSubl2,    //!< dst -= src
    kMull2,    //!< dst *= src
    kDivl2,    //!< dst /= src
    kBisl2,    //!< dst |= src (bit set)
    kXorl2,    //!< dst ^= src
    kBicl2,    //!< dst &= src (via complemented mask; modeled as AND)
    kAshl,     //!< arithmetic/logical shift (positive left, negative right)
    kBitl,     //!< test src & dst, set flags only
    kCmpl,     //!< compare, set flags only
    kTstl,     //!< compare against zero
    kJbr,      //!< unconditional branch
    kJeql,     //!< branch if Z
    kJneq,     //!< branch if !Z
    kJlss,     //!< branch if N
    kJgeq,     //!< branch if !N
    kJleq,     //!< branch if N or Z
    kJgtr,     //!< branch if neither N nor Z
    kPushl,    //!< push a longword onto the argument stack
    kCalls,    //!< `calls $n, f`: save registers, pop n args into r2..
    kRet,      //!< return (value in r0)
    kHalt,     //!< stop (the simulation harness's exit)
    kNumOps
};

inline constexpr int kVOpCount = static_cast<int>(VOp::kNumOps);

/** Mnemonic (the paper's spelling). */
std::string_view vopName(VOp op);

/** Operand: register, immediate, global word, or register-indexed
 *  global array element. */
struct VOperand
{
    enum class Kind : std::uint8_t { kNone, kReg, kImm, kMem, kIdx };

    Kind kind = Kind::kNone;
    int reg = 0;            //!< kReg / kIdx index register
    std::int32_t value = 0; //!< kImm value, kMem/kIdx global word index

    static VOperand none() { return {}; }
    static VOperand r(int n) { return {Kind::kReg, n, 0}; }
    static VOperand imm(std::int32_t v) { return {Kind::kImm, 0, v}; }
    static VOperand mem(std::int32_t g) { return {Kind::kMem, 0, g}; }
    static VOperand idx(std::int32_t g, int reg_num)
    {
        return {Kind::kIdx, reg_num, g};
    }
};

struct VInst
{
    VOp op = VOp::kHalt;
    VOperand dst; //!< also the first source (two-operand style)
    VOperand src;
    int target = -1; //!< branch target / call entry (instruction index)
};

/** A linked VAX-like program. */
struct VaxProgram
{
    std::vector<VInst> code;
    std::vector<std::int32_t> globalInit;
    std::map<std::string, std::int32_t> globalIndex;
    int entry = 0;
};

/** Functional run results: the Table 2 histogram. */
struct VaxResult
{
    std::uint64_t instructions = 0;
    std::array<std::uint64_t, kVOpCount> opcodeCounts{};
    bool halted = false;
    std::int32_t returnValue = 0;

    std::uint64_t
    count(VOp op) const
    {
        return opcodeCounts[static_cast<std::size_t>(op)];
    }

    /** Paper-style histogram: opcode, count, percent. */
    std::string histogramTable() const;
};

/** The register machine (16 registers; r0 = return value). */
class VaxMachine
{
  public:
    explicit VaxMachine(const VaxProgram& prog);

    VaxResult run(std::uint64_t max_steps = 500'000'000);

    std::int32_t global(const std::string& name) const;

  private:
    std::int32_t read(const VOperand& o) const;
    void write(const VOperand& o, std::int32_t v);
    void setFlags(std::int32_t result);

    VaxProgram prog_;
    std::array<std::int32_t, 16> regs_{};
    std::vector<std::int32_t> globals_;
    std::vector<std::array<std::int32_t, 16>> callStack_;
    std::vector<int> returnStack_;
    std::vector<std::int32_t> argStack_;
    bool flagN_ = false;
    bool flagZ_ = false;
    int pc_ = 0;
    bool halted_ = false;
    VaxResult result_;
};

/**
 * Compile CRISP-C source for the VAX-like machine (the same front end
 * as crispcc, a register-based backend: locals live in registers, so
 * functions are limited to ~9 locals+temporaries).
 * @throws CrispError on unsupported constructs.
 */
VaxProgram compileForVax(const std::string& source);

} // namespace crisp::vax

#endif // CRISP_VAX_VAX_HH
