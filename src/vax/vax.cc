/**
 * @file
 * VAX-like machine: execution and histogram printing.
 */

#include "vax.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace crisp::vax
{

namespace
{

constexpr std::array<std::string_view, kVOpCount> kNames = {
    "movl", "clrl", "incl",  "decl", "addl2", "subl2", "mull2",
    "divl2", "bisl2", "xorl2", "bicl2", "ashl", "bitl", "cmpl",
    "tstl", "jbr",   "jeql",  "jneq", "jlss",  "jgeq",  "jleq",
    "jgtr", "pushl", "calls", "ret",   "halt",
};

} // namespace

std::string_view
vopName(VOp op)
{
    return kNames[static_cast<std::size_t>(op)];
}

VaxMachine::VaxMachine(const VaxProgram& prog)
    : prog_(prog), globals_(prog.globalInit)
{
    pc_ = prog.entry;
}

std::int32_t
VaxMachine::global(const std::string& name) const
{
    const auto it = prog_.globalIndex.find(name);
    if (it == prog_.globalIndex.end())
        throw CrispError("vax: unknown global " + name);
    return globals_[static_cast<std::size_t>(it->second)];
}

std::int32_t
VaxMachine::read(const VOperand& o) const
{
    switch (o.kind) {
      case VOperand::Kind::kReg:
        return regs_[static_cast<std::size_t>(o.reg)];
      case VOperand::Kind::kImm:
        return o.value;
      case VOperand::Kind::kMem:
        return globals_.at(static_cast<std::size_t>(o.value));
      case VOperand::Kind::kIdx:
        return globals_.at(static_cast<std::size_t>(
            o.value + regs_[static_cast<std::size_t>(o.reg)]));
      case VOperand::Kind::kNone:
        return 0;
    }
    return 0;
}

void
VaxMachine::write(const VOperand& o, std::int32_t v)
{
    switch (o.kind) {
      case VOperand::Kind::kReg:
        regs_[static_cast<std::size_t>(o.reg)] = v;
        return;
      case VOperand::Kind::kMem:
        globals_.at(static_cast<std::size_t>(o.value)) = v;
        return;
      case VOperand::Kind::kIdx:
        globals_.at(static_cast<std::size_t>(
            o.value + regs_[static_cast<std::size_t>(o.reg)])) = v;
        return;
      default:
        throw CrispError("vax: operand not writable");
    }
}

void
VaxMachine::setFlags(std::int32_t result)
{
    flagN_ = result < 0;
    flagZ_ = result == 0;
}

VaxResult
VaxMachine::run(std::uint64_t max_steps)
{
    using U = std::uint32_t;
    std::uint64_t steps = 0;
    while (!halted_ && steps++ < max_steps) {
        const VInst& in = prog_.code.at(static_cast<std::size_t>(pc_));
        ++result_.instructions;
        ++result_.opcodeCounts[static_cast<std::size_t>(in.op)];
        int next = pc_ + 1;

        switch (in.op) {
          case VOp::kMovl: {
            const std::int32_t v = read(in.src);
            write(in.dst, v);
            setFlags(v);
            break;
          }
          case VOp::kClrl:
            write(in.dst, 0);
            setFlags(0);
            break;
          case VOp::kIncl: {
            const auto v = static_cast<std::int32_t>(
                static_cast<U>(read(in.dst)) + 1u);
            write(in.dst, v);
            setFlags(v);
            break;
          }
          case VOp::kDecl: {
            const auto v = static_cast<std::int32_t>(
                static_cast<U>(read(in.dst)) - 1u);
            write(in.dst, v);
            setFlags(v);
            break;
          }
          case VOp::kAddl2:
          case VOp::kSubl2:
          case VOp::kMull2:
          case VOp::kDivl2:
          case VOp::kBisl2:
          case VOp::kXorl2:
          case VOp::kBicl2:
          case VOp::kAshl: {
            const std::int32_t a = read(in.dst);
            const std::int32_t b = read(in.src);
            std::int32_t v = 0;
            switch (in.op) {
              case VOp::kAddl2:
                v = static_cast<std::int32_t>(static_cast<U>(a) +
                                              static_cast<U>(b));
                break;
              case VOp::kSubl2:
                v = static_cast<std::int32_t>(static_cast<U>(a) -
                                              static_cast<U>(b));
                break;
              case VOp::kMull2:
                v = static_cast<std::int32_t>(static_cast<U>(a) *
                                              static_cast<U>(b));
                break;
              case VOp::kDivl2:
                v = b == 0 ? 0
                    : (a == INT32_MIN && b == -1 ? a : a / b);
                break;
              case VOp::kBisl2:
                v = a | b;
                break;
              case VOp::kXorl2:
                v = a ^ b;
                break;
              case VOp::kBicl2:
                v = a & b; // modeled as plain AND (see header)
                break;
              case VOp::kAshl:
                // Positive count shifts left, negative right
                // (logical, matching the CRISP-C definition of >>).
                if (b >= 0)
                    v = static_cast<std::int32_t>(
                        static_cast<U>(a)
                        << (static_cast<U>(b) & 31u));
                else
                    v = static_cast<std::int32_t>(
                        static_cast<U>(a) >>
                        (static_cast<U>(-b) & 31u));
                break;
              default:
                break;
            }
            write(in.dst, v);
            setFlags(v);
            break;
          }
          case VOp::kBitl:
            setFlags(read(in.dst) & read(in.src));
            break;
          case VOp::kCmpl: {
            const std::int32_t a = read(in.dst);
            const std::int32_t b = read(in.src);
            flagN_ = a < b;
            flagZ_ = a == b;
            break;
          }
          case VOp::kTstl:
            setFlags(read(in.dst));
            break;
          case VOp::kJbr:
            next = in.target;
            break;
          case VOp::kJeql:
            if (flagZ_)
                next = in.target;
            break;
          case VOp::kJneq:
            if (!flagZ_)
                next = in.target;
            break;
          case VOp::kJlss:
            if (flagN_)
                next = in.target;
            break;
          case VOp::kJgeq:
            if (!flagN_)
                next = in.target;
            break;
          case VOp::kJleq:
            if (flagN_ || flagZ_)
                next = in.target;
            break;
          case VOp::kJgtr:
            if (!flagN_ && !flagZ_)
                next = in.target;
            break;
          case VOp::kPushl:
            argStack_.push_back(read(in.dst));
            break;
          case VOp::kCalls: {
            // `calls $n, f`: save the caller's registers, then hand
            // the n pushed arguments to the callee in r2.. — the
            // register-file analogue of the VAX CALLS stack frame.
            callStack_.push_back(regs_);
            returnStack_.push_back(next);
            const int n = in.src.value;
            if (static_cast<std::size_t>(n) > argStack_.size())
                throw CrispError("vax: argument stack underflow");
            for (int j = 0; j < n; ++j) {
                regs_[static_cast<std::size_t>(2 + j)] =
                    argStack_[argStack_.size() -
                              static_cast<std::size_t>(n - j)];
            }
            argStack_.resize(argStack_.size() -
                             static_cast<std::size_t>(n));
            next = in.target;
            break;
          }
          case VOp::kRet: {
            if (returnStack_.empty())
                throw CrispError("vax: ret with empty call stack");
            const std::int32_t rv = regs_[0];
            regs_ = callStack_.back();
            callStack_.pop_back();
            regs_[0] = rv; // the return value survives the restore
            next = returnStack_.back();
            returnStack_.pop_back();
            break;
          }
          case VOp::kHalt:
            halted_ = true;
            result_.halted = true;
            result_.returnValue = regs_[0];
            break;
          default:
            throw CrispError("vax: bad opcode");
        }
        pc_ = next;
    }
    return result_;
}

std::string
VaxResult::histogramTable() const
{
    std::vector<std::pair<std::uint64_t, VOp>> rows;
    for (int i = 0; i < kVOpCount; ++i) {
        if (opcodeCounts[static_cast<std::size_t>(i)] > 0) {
            rows.emplace_back(opcodeCounts[static_cast<std::size_t>(i)],
                              static_cast<VOp>(i));
        }
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.first > b.first;
    });

    std::ostringstream os;
    os << "Total of " << instructions << " instructions\n";
    os << std::left << std::setw(10) << "Opcode" << std::right
       << std::setw(10) << "Count" << std::setw(10) << "Percent" << "\n";
    for (const auto& [count, op] : rows) {
        os << std::left << std::setw(10) << vopName(op) << std::right
           << std::setw(10) << count << std::setw(9) << std::fixed
           << std::setprecision(2)
           << 100.0 * static_cast<double>(count) /
                  static_cast<double>(instructions)
           << "%\n";
    }
    return os.str();
}

} // namespace crisp::vax
