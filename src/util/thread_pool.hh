/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel
 * simulation sweeps (torture seeds, ablation grid points) and for the
 * crispd worker fleet.
 *
 * Determinism contract: the pool only schedules work; it never merges
 * results. Callers index results by input position (parallelFor hands
 * each task its index), so the assembled output is identical for any
 * worker count — `crisptorture --jobs 8` must report byte-for-byte what
 * `--jobs 1` reports. Each task must own its world (its own CrispCpu,
 * its own RNG seeded from the task index); the pool provides no shared
 * state on purpose.
 *
 * Shutdown contract (the part a long-lived daemon leans on):
 *
 *  - stop(kDrain): no further submissions are accepted; every task
 *    already queued runs to completion; workers are joined. This is
 *    what the destructor does.
 *  - stop(kAbort): no further submissions; tasks not yet started are
 *    discarded (counted in abandoned()), tasks already running finish;
 *    workers are joined. When stop() returns, in either mode, no task
 *    is running and none will ever run — accounting is exact:
 *    submitted == executed + abandoned.
 *  - A task that throws never kills its worker thread: the exception
 *    is captured (first one wins, see firstError()) and the worker
 *    moves on. parallelFor keeps its stronger per-index rethrow.
 */

#ifndef CRISP_UTIL_THREAD_POOL_HH
#define CRISP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crisp::util
{

class ThreadPool
{
  public:
    /** What happens to queued-but-unstarted tasks at stop(). */
    enum class Stop : std::uint8_t {
        kDrain, //!< run everything already queued, then join
        kAbort, //!< discard the queue (counted), finish running tasks
    };

    /** @p threads is clamped to at least 1. */
    explicit ThreadPool(int threads);

    /** Equivalent to stop(Stop::kDrain). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue one task; returns immediately. @return false (task
     * dropped, not counted as submitted) once stop() has begun.
     */
    bool submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Shut the pool down (see the shutdown contract above). Idempotent;
     * the first caller's mode wins. Safe to call concurrently with
     * submit() from other threads: a submission either fully enqueues
     * before the stop (and is drained/aborted accordingly) or is
     * rejected.
     */
    void stop(Stop mode = Stop::kDrain);

    /** Tasks discarded unstarted by stop(kAbort). */
    std::size_t abandoned() const;

    /** Tasks that ran to completion (including ones that threw). */
    std::size_t executed() const;

    /**
     * First exception thrown by a plain submit() task (parallelFor
     * exceptions are rethrown there instead and do not appear here).
     * Null if every task returned normally.
     */
    std::exception_ptr firstError() const;

    /**
     * Run fn(0) .. fn(count - 1) across the pool and wait. Exceptions
     * from tasks are captured and the first one (by index, not by
     * completion time — determinism again) is rethrown here.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

    /** Reasonable default for --jobs: hardware concurrency, min 1. */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    /** Serializes stop(); held across the joins. */
    std::mutex stopMu_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::size_t inFlight_ = 0;
    std::size_t executed_ = 0;
    std::size_t abandoned_ = 0;
    std::exception_ptr firstError_;
    bool stopping_ = false;
    bool joined_ = false;
};

} // namespace crisp::util

#endif // CRISP_UTIL_THREAD_POOL_HH
