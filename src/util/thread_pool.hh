/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel
 * simulation sweeps (torture seeds, ablation grid points).
 *
 * Determinism contract: the pool only schedules work; it never merges
 * results. Callers index results by input position (parallelFor hands
 * each task its index), so the assembled output is identical for any
 * worker count — `crisptorture --jobs 8` must report byte-for-byte what
 * `--jobs 1` reports. Each task must own its world (its own CrispCpu,
 * its own RNG seeded from the task index); the pool provides no shared
 * state on purpose.
 */

#ifndef CRISP_UTIL_THREAD_POOL_HH
#define CRISP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crisp::util
{

class ThreadPool
{
  public:
    /** @p threads is clamped to at least 1. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one task; returns immediately. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Run fn(0) .. fn(count - 1) across the pool and wait. Exceptions
     * from tasks are captured and the first one (by index, not by
     * completion time — determinism again) is rethrown here.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

    /** Reasonable default for --jobs: hardware concurrency, min 1. */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

} // namespace crisp::util

#endif // CRISP_UTIL_THREAD_POOL_HH
