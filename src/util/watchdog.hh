/**
 * @file
 * Wall-clock deadline watchdog: one background thread that fires
 * cooperative-cancellation flags when their deadlines pass.
 *
 * The simulator's cycle loop polls an `std::atomic<bool>` (see
 * CrispCpu::setCancelFlag), so enforcing a wall-clock budget needs
 * someone to *set* that flag at the right time. A Watchdog owns exactly
 * one scanner thread no matter how many deadlines are armed, so a
 * service running hundreds of jobs (crispd) or a torture sweep running
 * thousands of seeds (--timeout-ms) pays one thread, not one per job.
 *
 * Usage:
 *   util::Watchdog wd;
 *   auto timer = wd.arm(std::chrono::milliseconds(500));
 *   cpu.setCancelFlag(&timer->fired);
 *   cpu.run();                       // returns early if the flag fires
 *   timer->disarm();                 // or just drop the shared_ptr
 *
 * Dropping every shared_ptr to a Timer disarms it implicitly: the
 * scanner holds weak_ptrs and prunes dead entries. Firing is one
 * relaxed atomic store; the watchdog never touches the job again.
 */

#ifndef CRISP_UTIL_WATCHDOG_HH
#define CRISP_UTIL_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crisp::util
{

class Watchdog
{
  public:
    /** One armed deadline. `fired` is the cancellation flag. */
    struct Timer
    {
        std::atomic<bool> fired{false};
        std::chrono::steady_clock::time_point deadline;

        /** Forget the deadline without firing (idempotent). */
        void disarm() { disarmed.store(true, std::memory_order_relaxed); }

        std::atomic<bool> disarmed{false};
    };

    Watchdog() = default;
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /**
     * Arm a timer that fires @p after from now. The scanner thread is
     * started lazily on the first arm.
     */
    std::shared_ptr<Timer> arm(std::chrono::milliseconds after);

    /** Arm at an absolute steady_clock deadline. */
    std::shared_ptr<Timer>
    armAt(std::chrono::steady_clock::time_point deadline);

    /** Armed, not-yet-fired, not-disarmed timers (test/metrics hook). */
    std::size_t pending() const;

  private:
    void scanLoop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::weak_ptr<Timer>> timers_;
    std::thread scanner_;
    bool started_ = false;
    bool stop_ = false;
};

} // namespace crisp::util

#endif // CRISP_UTIL_WATCHDOG_HH
