/**
 * @file
 * Thread pool implementation.
 */

#include "thread_pool.hh"

#include <atomic>

namespace crisp::util
{

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop(Stop::kDrain);
}

bool
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return false;
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    cv_.notify_one();
    return true;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] { return inFlight_ == 0; });
}

void
ThreadPool::stop(Stop mode)
{
    // Serialize stops: the first caller shuts the pool down, any later
    // caller (including the destructor) blocks until that completes and
    // then sees joined_.
    std::lock_guard<std::mutex> stop_lk(stopMu_);
    if (joined_)
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
        if (mode == Stop::kAbort) {
            abandoned_ += tasks_.size();
            inFlight_ -= tasks_.size();
            std::queue<std::function<void()>> empty;
            tasks_.swap(empty);
        }
    }
    cv_.notify_all();
    idleCv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
    joined_ = true;
}

std::size_t
ThreadPool::abandoned() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return abandoned_;
}

std::size_t
ThreadPool::executed() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return executed_;
}

std::exception_ptr
ThreadPool::firstError() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return firstError_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping and drained (or aborted)
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        // A throwing task must not take its worker down with it: the
        // pool would silently lose a lane and a drain-stop would hang
        // on the tasks that lane would have run.
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++executed_;
            --inFlight_;
            if (err && !firstError_)
                firstError_ = err;
        }
        idleCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)>& fn)
{
    if (count == 0)
        return;
    // Per-index exception slots: the lowest-index failure wins, no
    // matter which task crashed first in wall-clock order.
    std::vector<std::exception_ptr> errors(count);
    // Work stealing by atomic counter: tasks are cheap to hand out and
    // sweep items have wildly different run lengths.
    std::atomic<std::size_t> next{0};
    const auto lane = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };
    const std::size_t lanes =
        std::min(count, static_cast<std::size_t>(threadCount()));
    bool any_submitted = false;
    for (std::size_t l = 0; l < lanes; ++l)
        any_submitted = submit(lane) || any_submitted;
    // Pool already stopping: run on the caller's thread instead of
    // silently doing nothing — the contract is that fn(i) runs for
    // every i exactly once.
    lane();
    if (any_submitted)
        wait();
    for (const std::exception_ptr& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

int
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace crisp::util
