/**
 * @file
 * Thread pool implementation.
 */

#include "thread_pool.hh"

#include <atomic>
#include <exception>

namespace crisp::util
{

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ and drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --inFlight_;
        }
        idleCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)>& fn)
{
    if (count == 0)
        return;
    // Per-index exception slots: the lowest-index failure wins, no
    // matter which task crashed first in wall-clock order.
    std::vector<std::exception_ptr> errors(count);
    // Work stealing by atomic counter: tasks are cheap to hand out and
    // sweep items have wildly different run lengths.
    std::atomic<std::size_t> next{0};
    const std::size_t lanes =
        std::min(count, static_cast<std::size_t>(threadCount()));
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        submit([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    wait();
    for (const std::exception_ptr& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

int
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace crisp::util
