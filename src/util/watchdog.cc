/**
 * @file
 * Watchdog scanner thread.
 */

#include "watchdog.hh"

#include <algorithm>

namespace crisp::util
{

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (scanner_.joinable())
        scanner_.join();
}

std::shared_ptr<Watchdog::Timer>
Watchdog::arm(std::chrono::milliseconds after)
{
    return armAt(std::chrono::steady_clock::now() + after);
}

std::shared_ptr<Watchdog::Timer>
Watchdog::armAt(std::chrono::steady_clock::time_point deadline)
{
    auto t = std::make_shared<Timer>();
    t->deadline = deadline;
    {
        std::lock_guard<std::mutex> lk(mu_);
        timers_.push_back(t);
        if (!started_) {
            started_ = true;
            scanner_ = std::thread([this] { scanLoop(); });
        }
    }
    cv_.notify_all(); // the new deadline may be the earliest
    return t;
}

std::size_t
Watchdog::pending() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& w : timers_) {
        if (const auto t = w.lock()) {
            if (!t->fired.load(std::memory_order_relaxed) &&
                !t->disarmed.load(std::memory_order_relaxed))
                ++n;
        }
    }
    return n;
}

void
Watchdog::scanLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (stop_)
            return;

        // Fire what's due, drop what's dead, find the next deadline.
        const auto now = std::chrono::steady_clock::now();
        auto next = now + std::chrono::hours(24);
        bool have_next = false;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < timers_.size(); ++i) {
            const auto t = timers_[i].lock();
            if (!t || t->disarmed.load(std::memory_order_relaxed) ||
                t->fired.load(std::memory_order_relaxed))
                continue; // prune
            if (t->deadline <= now) {
                t->fired.store(true, std::memory_order_relaxed);
                continue; // fired once; never touched again
            }
            if (!have_next || t->deadline < next) {
                next = t->deadline;
                have_next = true;
            }
            timers_[keep++] = timers_[i];
        }
        timers_.resize(keep);

        if (have_next)
            cv_.wait_until(lk, next);
        else
            cv_.wait(lk, [this] {
                return stop_ || !timers_.empty();
            });
    }
}

} // namespace crisp::util
