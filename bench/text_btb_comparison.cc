/**
 * @file
 * Reproduces the paper's "Comparison to Other Schemes" numbers:
 *  - an MU5-style 8-entry jump trace predicts poorly (paper: 40-65%
 *    correct, "barely better than tossing a coin");
 *  - a Lee-and-Smith BTB of 128 sets x 4 entries reaches ~78%;
 *  - either way every branch still costs at least one pipeline slot,
 *    which Branch Folding eliminates.
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "predict/predictors.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("BTB comparison (paper: MU5 8-entry jump trace 40-65%%; "
                "Lee & Smith 128x4 BTB ~78%%)\n");
    std::printf("%-8s %14s %14s %14s\n", "Program", "jumptrace-8",
                "btb-32x4", "btb-128x4");

    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        BranchTraceRecorder rec;
        interp.run(500'000'000, &rec);

        BranchTargetBuffer jt(8, 1, /*use_counters=*/false);
        BranchTargetBuffer small(32, 4);
        BranchTargetBuffer big(128, 4);
        const auto a0 = jt.evaluate(rec.events);
        const auto a1 = small.evaluate(rec.events);
        const auto a2 = big.evaluate(rec.events);
        std::printf("%-8s %13.1f%% %13.1f%% %13.1f%%\n", w.name.c_str(),
                    100 * a0.rate(), 100 * a1.rate(), 100 * a2.rate());
    }

    std::printf(
        "\nEven a perfect BTB spends >= 1 cycle per branch instruction; "
        "Branch Folding removes\nthe slot entirely. The paper also "
        "notes a 128x4 BTB 'would be nearly as large as our\nentire "
        "microprocessor chip' (the DIC adds only 64 bits x 32 "
        "entries).\n");
    return 0;
}
