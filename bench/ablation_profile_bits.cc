/**
 * @file
 * Ablation: how the static prediction bit is set. The paper: "The
 * setting of CRISP's branch prediction bit is normally done by the
 * compiler, though other techniques are possible." This bench compares
 * three bit-setting strategies end-to-end on the pipeline:
 *
 *   naive      all bits not-taken (Table 4 case A's compiler)
 *   heuristic  backward-taken / forward-not-taken (crispcc default)
 *   profile    per-site majority from a training run (the realizable
 *              version of Table 1's "optimal static" column)
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "predict/profile.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("Prediction-bit strategy ablation (pipeline cycles; "
                "mispredicts in parentheses)\n");
    std::printf("%-8s %18s %18s %18s %10s\n", "Program", "naive",
                "heuristic", "profile", "prof/heur");

    for (const Workload& w : allWorkloads()) {
        cc::CompileOptions naive;
        naive.predict = cc::PredictMode::kAllNotTaken;
        cc::CompileOptions heur;
        heur.predict = cc::PredictMode::kBackwardTaken;

        const Program p_naive = cc::compile(w.source, naive).program;
        const Program p_heur = cc::compile(w.source, heur).program;
        const Program p_prof = profileOptimize(p_heur);

        SimStats s[3];
        int i = 0;
        for (const Program* p : {&p_naive, &p_heur, &p_prof}) {
            CrispCpu cpu(*p);
            s[i++] = cpu.run();
        }
        char cols[3][32];
        for (int c = 0; c < 3; ++c) {
            std::snprintf(cols[c], sizeof(cols[c]), "%llu(%llu)",
                          static_cast<unsigned long long>(s[c].cycles),
                          static_cast<unsigned long long>(
                              s[c].mispredicts));
        }
        std::printf("%-8s %18s %18s %18s %9.2f%%\n", w.name.c_str(),
                    cols[0], cols[1], cols[2],
                    100.0 * (static_cast<double>(s[1].cycles) /
                                 static_cast<double>(s[2].cycles) -
                             1.0));
    }
    std::printf("\nProfile feedback recovers whatever the heuristic "
                "leaves on the table (data-dependent\nbranches the "
                "backward/forward rule cannot see); Branch Spreading "
                "already removed the\ncost of branches whose compare "
                "could be hoisted, so gains concentrate in tight\n"
                "loops with unpredictable exits.\n");
    return 0;
}
