/**
 * @file
 * Shared helpers for the reproduction benches.
 */

#ifndef CRISP_BENCH_COMMON_HH
#define CRISP_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "sim/config.hh"
#include "sim/cpu.hh"

namespace crisp::bench
{

/** The five configurations of the paper's Table 4. */
struct Table4Case
{
    char name;
    FoldPolicy fold;
    cc::PredictMode predict;
    bool spread;
};

inline const Table4Case kTable4Cases[] = {
    {'A', FoldPolicy::kNone, cc::PredictMode::kAllNotTaken, false},
    {'B', FoldPolicy::kNone, cc::PredictMode::kBackwardTaken, false},
    {'C', FoldPolicy::kCrisp, cc::PredictMode::kBackwardTaken, false},
    {'D', FoldPolicy::kCrisp, cc::PredictMode::kBackwardTaken, true},
    {'E', FoldPolicy::kNone, cc::PredictMode::kBackwardTaken, true},
};

/** Compile a source for one Table 4 case and run it on the pipeline. */
inline SimStats
runCase(const std::string& source, const Table4Case& c,
        SimConfig base = {})
{
    cc::CompileOptions opts;
    opts.spread = c.spread;
    opts.predict = c.predict;
    const auto r = cc::compile(source, opts);

    SimConfig cfg = base;
    cfg.foldPolicy = c.fold;
    CrispCpu cpu(r.program, cfg);
    return cpu.run();
}

} // namespace crisp::bench

#endif // CRISP_BENCH_COMMON_HH
