/**
 * @file
 * Reproduces the paper's in-text claim: "Dynamic instruction
 * measurements show that around 95% of the branches executed are
 * encoded in the one parcel instruction format."
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("One-parcel branch format usage (paper: ~95%% of "
                "executed branches)\n");
    std::printf("%-8s %12s %12s %8s\n", "Program", "branches",
                "one-parcel", "share");

    std::uint64_t all = 0;
    std::uint64_t all_short = 0;
    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        const InterpResult res = interp.run(500'000'000);
        all += res.branches;
        all_short += res.shortBranches;
        std::printf("%-8s %12llu %12llu %7.1f%%\n", w.name.c_str(),
                    static_cast<unsigned long long>(res.branches),
                    static_cast<unsigned long long>(res.shortBranches),
                    100.0 * static_cast<double>(res.shortBranches) /
                        static_cast<double>(res.branches));
    }
    std::printf("%-8s %12llu %12llu %7.1f%%\n", "TOTAL",
                static_cast<unsigned long long>(all),
                static_cast<unsigned long long>(all_short),
                100.0 * static_cast<double>(all_short) /
                    static_cast<double>(all));
    std::printf("\n(Calls are three-parcel by definition and dominate "
                "the non-short remainder,\nexactly as the paper "
                "describes: 'Most of the remainder use the three parcel "
                "form\nwith an absolute address.')\n");
    return 0;
}
