/**
 * @file
 * Reproduces the paper's Table 1: "Accuracies of branch prediction
 * techniques" — optimal static prediction vs 1/2/3 bits of dynamic
 * history (infinite table), over the six workloads.
 *
 * Paper reference values (proxy workloads; shapes, not exact numbers,
 * are the reproduction target):
 *   Program     static  1-bit  2-bit  3-bit   branches
 *   troff        .94     .93    .95    .95    22 M
 *   C compiler   .74     .77    .77    .74    1.5 M
 *   VLSI DRC     .89     .95    .95    .95    38 M
 *   Dhrystone    .86     .72    .79    .79    1.5 M
 *   Cwhet        .84     .68    .79    .79    33,550
 *   Puzzle       .92     .87    .87    .87    741
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "predict/predictors.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("Table 1: Accuracies of branch prediction techniques\n");
    std::printf("%-8s %8s %8s %8s %8s %12s   (paper: static / 1b / 2b "
                "/ 3b)\n",
                "Program", "static", "1-bit", "2-bit", "3-bit",
                "branches");

    struct PaperRow
    {
        const char* name;
        double s, d1, d2, d3;
    };
    const PaperRow paper[] = {
        {"troff", .94, .93, .95, .95}, {"ccomp", .74, .77, .77, .74},
        {"drc", .89, .95, .95, .95},   {"dhry", .86, .72, .79, .79},
        {"cwhet", .84, .68, .79, .79}, {"puzzle", .92, .87, .87, .87},
    };

    for (const PaperRow& p : paper) {
        const Workload& w = workload(p.name);
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        BranchTraceRecorder rec;
        interp.run(500'000'000, &rec);

        const PredictionAccuracy st = evaluateStaticOracle(rec.events);
        double dyn[3];
        std::uint64_t total = 0;
        for (int bits = 1; bits <= 3; ++bits) {
            CounterPredictor cp(bits);
            const PredictionAccuracy a = evaluateDirection(rec.events, cp);
            dyn[bits - 1] = a.rate();
            total = a.total;
        }
        std::printf("%-8s %8.2f %8.2f %8.2f %8.2f %12llu   "
                    "(paper: %.2f / %.2f / %.2f / %.2f)\n",
                    w.name.c_str(), st.rate(), dyn[0], dyn[1], dyn[2],
                    static_cast<unsigned long long>(total), p.s, p.d1,
                    p.d2, p.d3);
    }

    // The paper's explanation of why static can beat dynamic: on a
    // strictly alternating branch, static gets 50%, dynamic ~0%.
    std::printf("\nAlternating-branch decomposition (paper: static 50%%, "
                "all dynamic schemes 0%%):\n");
    {
        const int flips = 1000;
        std::printf("  optimal static: 0.50 (by construction)\n");
        for (int bits = 1; bits <= 3; ++bits) {
            CounterPredictor cp(bits);
            const PredictionAccuracy a = alternatingAccuracy(cp, flips);
            std::printf("  %d-bit dynamic: %.2f\n", bits, a.rate());
        }
    }
    return 0;
}
