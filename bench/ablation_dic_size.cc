/**
 * @file
 * Ablation: Decoded Instruction Cache size. The paper: "true zero
 * delay for branches can only occur if the instruction cache has a
 * hit. Being careful with the design of the instruction prefetch unit
 * and instruction cache should not be overlooked."
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    const int sizes[] = {8, 16, 32, 64, 128, 256};

    std::printf("DIC-size ablation: cycles (DIC miss stalls) per "
                "entry-count; CRISP shipped 32 entries\n");
    std::printf("%-8s", "Program");
    for (int n : sizes)
        std::printf(" %16d", n);
    std::printf("\n");

    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        std::printf("%-8s", w.name.c_str());
        for (int n : sizes) {
            SimConfig cfg;
            cfg.dicEntries = n;
            CrispCpu cpu(r.program, cfg);
            const SimStats& s = cpu.run();
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llu(%llu)",
                          static_cast<unsigned long long>(s.cycles),
                          static_cast<unsigned long long>(
                              s.dicMissStallCycles));
            std::printf(" %16s", buf);
        }
        std::printf("\n");
    }
    std::printf("\nSmall caches thrash on loops larger than the "
                "entry count and on call-heavy code;\nbeyond the "
                "working-set size, extra entries buy nothing.\n");
    return 0;
}
