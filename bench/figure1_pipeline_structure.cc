/**
 * @file
 * Figure 1 is the CRISP block diagram: Main Memory -> Prefetch and
 * Decode Unit -> Decoded Instruction Cache -> Execution Unit. A block
 * diagram cannot be "measured", so this bench validates the structural
 * claims attached to it:
 *
 *  1. the DIC decouples the PDU from the EU ("if the PDU has to wait
 *     for memory, this does not necessarily stall the EU"): EU stall
 *     cycles grow far slower than memory latency once a loop is cached;
 *  2. cutting the would-be six-stage pipe in half reduces breakage:
 *     the mispredict penalty is bounded by the three EU stages.
 */

#include <cstdio>

#include "common.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;
    const std::string src = fig3Source(1024);

    std::printf("Figure 1 structural validation\n\n");
    std::printf("PDU <-> EU decoupling: total cycles vs main-memory "
                "latency (fig3, folding+spreading):\n");
    std::printf("%-12s %10s %12s %12s %10s\n", "mem latency", "cycles",
                "missStalls", "memFetches", "issuedCPI");
    for (int lat : {1, 2, 3, 5, 8, 12, 20}) {
        SimConfig cfg;
        cfg.memLatency = lat;
        const SimStats s =
            bench::runCase(src, bench::kTable4Cases[3], cfg);
        std::printf("%-12d %10llu %12llu %12llu %10.3f\n", lat,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.dicMissStallCycles),
                    static_cast<unsigned long long>(s.memFetches),
                    s.issuedCpi());
    }
    std::printf("\nOnce the loop is decoded into the DIC the EU never "
                "waits for memory again:\ncycles are almost flat in "
                "memory latency, which is the decoupling claim.\n");

    std::printf("\nPipeline halving: worst-case mispredict repair is "
                "bounded by the 3 EU stages\n(see "
                "ablation_spread_distance for the full 3/2/1/0 "
                "staircase).\n");
    return 0;
}
