/**
 * @file
 * Ablation: static bit vs in-pipeline dynamic prediction hardware.
 *
 * Table 1 compares trace accuracies; this bench runs the road not
 * taken end-to-end: the same programs on the same pipeline with the
 * static bit replaced by a direct-mapped 1-bit or 2-bit history table.
 * The paper's conclusion — the added hardware buys little once Branch
 * Spreading has removed most speculation — becomes measurable in
 * cycles.
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("Hardware-predictor ablation (pipeline cycles; "
                "mispredicts in parentheses; 256-entry tables)\n");
    std::printf("%-8s %18s %18s %18s %10s\n", "Program", "static-bit",
                "dynamic-1bit", "dynamic-2bit", "2b gain");

    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        SimStats s[3];
        int i = 0;
        for (PredictorKind k :
             {PredictorKind::kStaticBit, PredictorKind::kDynamic1,
              PredictorKind::kDynamic2}) {
            SimConfig cfg;
            cfg.predictor = k;
            CrispCpu cpu(r.program, cfg);
            s[i++] = cpu.run();
        }
        char cols[3][32];
        for (int c = 0; c < 3; ++c) {
            std::snprintf(cols[c], sizeof(cols[c]), "%llu(%llu)",
                          static_cast<unsigned long long>(s[c].cycles),
                          static_cast<unsigned long long>(
                              s[c].mispredicts));
        }
        std::printf("%-8s %18s %18s %18s %9.2f%%\n", w.name.c_str(),
                    cols[0], cols[1], cols[2],
                    100.0 * (static_cast<double>(s[0].cycles) /
                                 static_cast<double>(s[2].cycles) -
                             1.0));
    }
    std::printf("\nSpreading already resolved most conditional branches "
                "at issue, so the dynamic\ntables only act on the "
                "residue — the paper's cost/benefit argument for the\n"
                "single static bit.\n");
    return 0;
}
