/**
 * @file
 * Ablation: mispredict penalty as a function of compare-to-branch
 * distance — the paper's staircase: "compare in the same instruction ->
 * 3 clock ticks lost; one stage ahead -> 2; two ahead -> 1; three
 * ahead -> 0". This is the mechanism Branch Spreading exploits.
 *
 * Method: a loop whose conditional backedge is *always mispredicted*
 * (prediction bit says not-taken, the branch takes on every iteration
 * but the last), with k filler instructions between the compare and
 * the branch. With folding, the branch folds into the k-th filler.
 */

#include <cstdio>
#include <sstream>

#include "asm/assembler.hh"
#include "sim/cpu.hh"

using namespace crisp;

namespace
{

std::string
makeLoop(int k, int iters)
{
    std::ostringstream os;
    os << ".entry start\n"
       << ".local i 0\n"
       << ".local f 1\n"
       << "start:\n"
       << "    enter 2\n"
       << "    mov i, 0\n"
       << "top:\n"
       << "    add i, 1\n"
       << "    cmp.s< i, " << iters << "\n";
    for (int j = 0; j < k; ++j)
        os << "    add f, 1\n"; // independent filler
    os << "    iftjmpn top\n" // bit says NOT taken: mispredicted
       << "    return 2\n";
    return os.str();
}

} // namespace

int
main()
{
    const int iters = 2000;

    std::printf("Compare-to-branch distance staircase (always-"
                "mispredicted backedge, %d iterations)\n",
                iters);
    std::printf("%-3s | %-22s | %-22s | paper (folded)\n", "k",
                "folded: cyc/it  pen/it", "unfolded: cyc/it  pen/it");

    const int paper_penalty[] = {3, 2, 1, 0, 0, 0};

    for (int k = 0; k <= 5; ++k) {
        // The loop ends by falling through iftjmpn into `return`, but
        // the program needs somewhere to return to: wrap with a
        // call-free halt entry instead.
        std::string src = makeLoop(k, iters);
        // Replace return with halt for a standalone program.
        const auto pos = src.rfind("return 2");
        src.replace(pos, 8, "halt");

        double cyc[2];
        double pen[2];
        int idx = 0;
        for (FoldPolicy p : {FoldPolicy::kCrisp, FoldPolicy::kNone}) {
            const Program prog = assemble(src);
            SimConfig cfg;
            cfg.foldPolicy = p;
            CrispCpu cpu(prog, cfg);
            const SimStats& s = cpu.run();
            const double per_iter =
                static_cast<double>(s.cycles) / iters;
            const double issued_per_iter =
                static_cast<double>(s.issued) / iters;
            cyc[idx] = per_iter;
            pen[idx] = per_iter - issued_per_iter;
            ++idx;
        }
        std::printf("%-3d | %9.2f %9.2f    | %9.2f %9.2f    | %d\n", k,
                    cyc[0], pen[0], cyc[1], pen[1], paper_penalty[k]);
    }

    std::printf(
        "\nFolded branches recover from the Alternate-PC of whatever EU "
        "stage the carrier\noccupies when the compare retires (3/2/1/0); "
        "unfolded branches verify in their own\nRR stage (3 cycles until "
        "the compare is >= 2 slots ahead, then 0) but also burn an\n"
        "issue slot, so folding is never slower in total cycles.\n");
    return 0;
}
