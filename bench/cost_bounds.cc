/**
 * @file
 * bench_cost — committed static-vs-dynamic branch-cost ledger.
 *
 * For every workload in the suite: compile with the default pass
 * pipeline, run the abstract-interpretation cost engine to get the
 * per-site static delay bounds, then simulate once under the default
 * (paper) configuration and record where the dynamic cost actually
 * landed inside the static envelope.
 *
 *   bench_cost [--out=PATH]     write the ledger (default
 *                               BENCH_COST.json)
 *   bench_cost --check=PATH     regenerate and require an exact match
 *                               with the committed ledger (ctest runs
 *                               this; every field is a deterministic
 *                               integer, so any drift is a real
 *                               behaviour change in the compiler, the
 *                               cost engine, or the simulator)
 *
 * The tool also re-asserts the envelope invariant itself: a simulated
 * branchDelayCycles outside [delayLowerBound, delayUpperBound] is an
 * immediate failure, independent of the committed file.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/checks.hh"
#include "analysis/opt.hh"
#include "analysis/oracle.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

/**
 * Dynamic-weighted static envelope over the sites that actually
 * executed (unreached sites contribute zero executions on both ends),
 * plus the invariant check: the simulated branchDelayCycles must land
 * inside [lo, hi]. Returns false (and reports) on any violation.
 */
bool
envelope(const std::string& name, const AnalysisResult& st,
         const SiteRecorder& rec, const SimStats& dyn, std::uint64_t& lo,
         std::uint64_t& hi)
{
    bool ok = true;
    lo = hi = 0;
    for (const auto& [pc, c] : rec.sites) {
        if (const SiteCost* sc = st.cost.find(pc)) {
            lo += static_cast<std::uint64_t>(sc->bound.lo) * c.total;
            hi += static_cast<std::uint64_t>(sc->bound.hi) * c.total;
        } else {
            ok = false;
            std::fprintf(stderr,
                         "bench_cost: %s: executed branch 0x%x has "
                         "no static cost bound\n",
                         name.c_str(), pc);
        }
    }
    if (dyn.branchDelayCycles < lo || dyn.branchDelayCycles > hi) {
        ok = false;
        std::fprintf(
            stderr,
            "bench_cost: %s: branchDelayCycles %llu "
            "escapes the static envelope [%llu, %llu]\n",
            name.c_str(),
            static_cast<unsigned long long>(dyn.branchDelayCycles),
            static_cast<unsigned long long>(lo),
            static_cast<unsigned long long>(hi));
    }
    return ok;
}

/** Indirect-site verdict counts for one analyzed binary. */
struct IndirectCounts
{
    int sites = 0;     //!< indirect branch sites
    int resolved = 0;  //!< finite target set proven
    int singleton = 0; //!< exactly one proven target
    int refined = 0;   //!< bound strictly below [2, 2] (vacuous sites)
};

IndirectCounts
indirectCounts(const AnalysisResult& st)
{
    IndirectCounts ic;
    for (const auto& [pc, c] : st.cost.sites) {
        if (!c.indirect)
            continue;
        ++ic.sites;
        if (c.targetResolved)
            ++ic.resolved;
        if (c.targetSingleton)
            ++ic.singleton;
        if (c.bound.hi < 2)
            ++ic.refined;
    }
    return ic;
}

std::string
buildLedger(bool& ok)
{
    ok = true;
    std::ostringstream os;
    os << "{\"schema\":\"crisp-bench-cost/3\",\"predict\":\"static-bit\","
          "\"workloads\":[";
    bool first = true;
    for (const Workload& w : allWorkloads()) {
        const cc::CompileResult r = cc::compile(w.source, {});

        AnalysisOptions opt;
        opt.predict = PredictConvention::kNone;
        opt.foldInfo = false;
        const SimConfig cfg;
        opt.costPredict = predictSourceFor(cfg);
        const AnalysisResult st = analyzeProgram(r.program, opt);

        SiteRecorder rec;
        CrispCpu cpu(r.program, cfg);
        const SimStats& dyn = cpu.run(&rec);

        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        ok &= envelope(w.name, st, rec, dyn, lo, hi);

        // The same workload through crispcc -O: the dataflow passes
        // must ship a validated rewrite whose envelope is never worse
        // than the baseline's.
        const OptReport orep = optimize(r, {});
        if (!orep.tv.ok) {
            ok = false;
            std::fprintf(stderr,
                         "bench_cost: %s: -O result failed the "
                         "translation validator\n",
                         w.name.c_str());
        }
        const AnalysisResult sto =
            analyzeProgram(orep.result.program, opt);

        SiteRecorder orec;
        CrispCpu ocpu(orep.result.program, cfg);
        const SimStats& odyn = ocpu.run(&orec);

        std::uint64_t olo = 0;
        std::uint64_t ohi = 0;
        ok &= envelope(w.name + " [-O]", sto, orec, odyn, olo, ohi);
        if (ohi > hi) {
            ok = false;
            std::fprintf(stderr,
                         "bench_cost: %s: -O envelope [%llu] exceeds "
                         "the baseline's [%llu]\n",
                         w.name.c_str(),
                         static_cast<unsigned long long>(ohi),
                         static_cast<unsigned long long>(hi));
        }

        if (!first)
            os << ",";
        first = false;
        const IndirectCounts ic = indirectCounts(st);
        const IndirectCounts oic = indirectCounts(sto);
        os << "{\"name\":\"" << w.name << "\""
           << ",\"branchSites\":" << st.staticBranchSites
           << ",\"condSites\":" << st.staticCondSites
           << ",\"zeroDelaySites\":" << st.cost.zeroDelaySites
           << ",\"constantSites\":" << st.cost.constantSites
           << ",\"maxDelayPerSite\":" << st.cost.maxDelayPerSite
           << ",\"indirectSites\":" << ic.sites
           << ",\"indirectResolved\":" << ic.resolved
           << ",\"indirectSingleton\":" << ic.singleton
           << ",\"indirectRefined\":" << ic.refined
           << ",\"delayLowerBound\":" << lo
           << ",\"delayUpperBound\":" << hi
           << ",\"branchDelayCycles\":" << dyn.branchDelayCycles
           << ",\"branches\":" << dyn.branches
           << ",\"cycles\":" << dyn.cycles
           << ",\"issued\":" << dyn.issued
           << ",\"opt\":{"
           << "\"optimized\":" << (orep.optimized ? "true" : "false")
           << ",\"branchesRewritten\":" << orep.stats.branchesRewritten
           << ",\"deadRemoved\":" << orep.stats.deadRemoved
           << ",\"devirtualized\":" << orep.stats.devirtualized
           << ",\"instrBefore\":" << orep.stats.instrBefore
           << ",\"instrAfter\":" << orep.stats.instrAfter
           << ",\"branchSites\":" << sto.staticBranchSites
           << ",\"indirectSites\":" << oic.sites
           << ",\"indirectSingleton\":" << oic.singleton
           << ",\"zeroDelaySites\":" << sto.cost.zeroDelaySites
           << ",\"constantSites\":" << sto.cost.constantSites
           << ",\"delayLowerBound\":" << olo
           << ",\"delayUpperBound\":" << ohi
           << ",\"branchDelayCycles\":" << odyn.branchDelayCycles
           << ",\"cycles\":" << odyn.cycles
           << ",\"issued\":" << odyn.issued << "}}";
    }
    os << "]}";
    return os.str();
}

std::string
readAll(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw CrispError("cannot open: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Strip trailing whitespace/newlines for the comparison. */
std::string
trimmed(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                          s.back() == ' ')) {
        s.pop_back();
    }
    return s;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_COST.json";
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0) {
            out_path = a.substr(6);
        } else if (a.rfind("--check=", 0) == 0) {
            check_path = a.substr(8);
        } else {
            std::fprintf(stderr,
                         "usage: bench_cost [--out=PATH | "
                         "--check=PATH]\n");
            return 2;
        }
    }

    try {
        bool ok = true;
        const std::string ledger = buildLedger(ok);
        if (!ok)
            return 1;
        if (!check_path.empty()) {
            const std::string want = trimmed(readAll(check_path));
            if (trimmed(ledger) != want) {
                std::fprintf(stderr,
                             "bench_cost: ledger drifted from %s\n"
                             "  committed: %s\n  current:   %s\n"
                             "regenerate with bench_cost --out=%s if "
                             "the change is intentional\n",
                             check_path.c_str(), want.c_str(),
                             ledger.c_str(), check_path.c_str());
                return 1;
            }
            std::printf("bench_cost check: ok (%s)\n",
                        check_path.c_str());
            return 0;
        }
        std::ofstream f(out_path, std::ios::binary);
        f << ledger << "\n";
        std::printf("bench_cost: wrote %s\n", out_path.c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_cost: %s\n", e.what());
        return 1;
    }
}
