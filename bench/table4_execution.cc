/**
 * @file
 * Reproduces the paper's Table 4: "Execution Statistics on CRISP for
 * program of Figure 3" — cases A..E toggling Branch Folding, Branch
 * Prediction and Branch Spreading, plus (beyond the paper) a genuine
 * one-delay-slot baseline machine.
 *
 * Paper reference values:
 *   Case  Fold Pred Spread  Cycles  Issued  Rel   iCPI  aCPI
 *   A     no   no   no      14,422  9,734   1.0   1.48  1.48
 *   B     no   yes  no      11,359  9,734   1.3   1.16  1.16
 *   C     yes  yes  no       8,789  7,174   1.6   1.22  0.90
 *   D     yes  yes  yes      7,250  7,174   2.0   1.01  0.74
 *   E     no   yes  yes      9,815  9,734   1.5   1.01  1.01
 */

#include <cstdio>

#include "baseline/delayed.hh"
#include "common.hh"
#include "workloads/workloads.hh"

namespace
{

struct PaperRow
{
    double cycles, issued, rel, icpi, acpi;
};

const PaperRow kPaper[] = {
    {14422, 9734, 1.0, 1.48, 1.48},
    {11359, 9734, 1.3, 1.16, 1.16},
    {8789, 7174, 1.6, 1.22, 0.90},
    {7250, 7174, 2.0, 1.01, 0.74},
    {9815, 9734, 1.5, 1.01, 1.01},
};

} // namespace

int
main()
{
    using namespace crisp;
    const std::string src = fig3Source(1024);

    std::printf("Table 4: Execution statistics on CRISP for the Figure 3 "
                "program (1024 iterations)\n");
    std::printf("%-4s %-5s %-5s %-7s | %9s %8s %5s %6s %6s | "
                "paper: %7s %6s %4s %5s %5s\n",
                "Case", "Fold", "Pred", "Spread", "Cycles", "Issued",
                "Rel", "iCPI", "aCPI", "Cycles", "Issued", "Rel", "iCPI",
                "aCPI");

    double base_cycles = 0;
    int idx = 0;
    for (const auto& c : bench::kTable4Cases) {
        const SimStats s = bench::runCase(src, c);
        if (c.name == 'A')
            base_cycles = static_cast<double>(s.cycles);
        const double rel = base_cycles / static_cast<double>(s.cycles);
        const PaperRow& p = kPaper[idx++];
        std::printf(
            "%-4c %-5s %-5s %-7s | %9llu %8llu %5.2f %6.2f %6.2f | "
            "       %7.0f %6.0f %4.1f %5.2f %5.2f\n",
            c.name, c.fold == FoldPolicy::kNone ? "no" : "yes",
            c.predict == cc::PredictMode::kAllNotTaken ? "no" : "yes",
            c.spread ? "yes" : "no",
            static_cast<unsigned long long>(s.cycles),
            static_cast<unsigned long long>(s.issued), rel, s.issuedCpi(),
            s.apparentCpi(), p.cycles, p.issued, p.rel, p.icpi, p.acpi);
    }

    // Beyond the paper: an actual one-delay-slot machine on the same
    // program (the class of machine case E approximates).
    {
        cc::CompileOptions opts;
        opts.spread = true;
        opts.delaySlots = true;
        const auto r = cc::compile(src, opts);
        DelayedBranchCpu cpu(r.program);
        const DelayedStats s = cpu.run();
        std::printf(
            "DLY  (true 1-delay-slot machine)   | %9llu %8llu %5.2f "
            "%6.2f %6s |\n",
            static_cast<unsigned long long>(s.cycles),
            static_cast<unsigned long long>(s.instructions),
            base_cycles / static_cast<double>(s.cycles), s.cpi(), "-");
    }

    std::printf("\nNotes: absolute cycles differ from the paper only in "
                "startup cost (crt0 + cold\n"
                "decoded-instruction-cache misses); the paper reports "
                "~50 cycles of call overhead.\n"
                "Relative performance, issued-instruction reduction and "
                "both CPI columns are the\n"
                "reproduction targets.\n");
    return 0;
}
