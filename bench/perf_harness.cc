/**
 * @file
 * bench_perf — host-performance harness for the cycle-level simulator.
 *
 *   bench_perf [--smoke] [--out=FILE | --out FILE] [--jobs=N]
 *              [--reps=N] [--check-floor=FILE]
 *
 * Times four workload families with std::chrono::steady_clock, each
 * under three execution paths — the cycle simulator's predecode fast
 * path, its SimConfig::usePredecode = false legacy path, and the
 * direct-threaded functional FastEngine (one engine per unit, a shared
 * PredecodeCache plus a warm shared Translation, FastEngine::reset()
 * between replays — exactly the warm-replay pattern crispd serves from
 * its program registry):
 *
 *  - torture_replay: replays the torture generator's programs (the same
 *    seeds the differential suite sweeps) on the default CRISP
 *    configuration. Each program is replayed several times, the way
 *    crisptorture actually uses them (one run per lockstep config, per
 *    fault kind, per shrinking step): one CrispCpu per program,
 *    CrispCpu::reset() between replays (timed as hot-loop work), and on
 *    the fast path all replays share one PredecodeCache, so runs after
 *    the first do no decode work at all. torture_replay_checked adds
 *    the retire-time decode checker, the worst case for decode
 *    overhead.
 *  - table4_fig3: the paper's Figure 3 program compiled for all five
 *    Table 4 cases.
 *  - dic_thrash: a loop whose body far exceeds the 32-entry DIC, so the
 *    PDU re-decodes the working set every iteration.
 *  - chain_dense: straight-line accumulator blocks stitched together by
 *    unconditional jumps — every block boundary is walkable, so the
 *    fast engine retires a whole replay as a handful of superblock
 *    traces. The engine's best case, replayed many times to exercise
 *    the O(dirty) warm reset.
 *
 * Three times are reported per measurement: hotSeconds (run only — the
 * hot loop the PR optimizes), setupSeconds (machine construction, paid
 * once per unit: image zeroing, and for cold paths decode/translate),
 * and endToEndSeconds (their sum). On the fastengine path the shared
 * Translation is prepared untimed, the way crispd's registry hands a
 * registry-warm translation to every fast job, so setup is image
 * zeroing alone. Rates are simulated instructions (architectural) and
 * simulated cycles per host second, best of --reps repetitions.
 *
 * Program preparation (generation, linking, compilation) fans out over
 * a thread pool (--jobs) and is never timed. The measured runs are
 * strictly sequential so one run never steals cycles from another.
 *
 * Output: a single JSON object (schema "crisp-bench-perf/3", described
 * in docs/PERFORMANCE.md) written to --out (default BENCH_PERF.json)
 * and validated by re-parsing before exit. --smoke shrinks every
 * workload to fractions of a second and is wired into ctest.
 *
 * --check-floor=FILE compares this run against the committed
 * BENCH_PERF.json instead of writing one. Absolute instr/s depends on
 * the host, so the check is ratio-normalized: for every workload both
 * the measured fastengine-over-cycle hot-loop speedup and the
 * end-to-end speedup (which also covers the warm-replay setup path)
 * must be at least 0.6x the committed values — a >40% relative
 * regression of the threaded engine fails the build on any machine.
 * (The factor is sized to the observed run-to-run ratio jitter of a
 * noisy shared-host vCPU, roughly ±30% around the median; a broken
 * warm path or a lost dispatch optimization costs far more than 40%.)
 * Wired into ctest except under sanitizers, whose overhead distorts
 * the ratio.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"
#include "sim/predecode.hh"
#include "sim/translate.hh"
#include "util/thread_pool.hh"
#include "verify/generator.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One program + configuration to simulate. */
struct Unit
{
    Program prog;
    SimConfig cfg;
};

struct Measure
{
    double hotSeconds = 0.0;
    double setupSeconds = 0.0;
    double endToEndSeconds = 0.0;
    std::uint64_t simInstructions = 0;
    std::uint64_t simCycles = 0;
};

/**
 * Run every unit @p replays times, timing construction and run
 * separately. On the predecode path all replays of a unit share one
 * PredecodeCache (the crisptorture usage pattern: the same program runs
 * once per lockstep config / fault kind / shrink step), so replays
 * after the first skip decode work entirely. The stats must describe a
 * clean halt: a fault or timeout means the harness is measuring a
 * broken simulation and must say so.
 */
template <class Machine>
Measure
runOnce(const std::vector<Unit>& units, int replays)
{
    constexpr bool engine = std::is_same_v<Machine, FastEngine>;
    Measure m;
    for (const Unit& u : units) {
        std::unique_ptr<PredecodeCache> shared;
        std::unique_ptr<Translation> warm;
        if (engine || u.cfg.usePredecode)
            shared = std::make_unique<PredecodeCache>(u.prog);
        if constexpr (engine) {
            // The registry-warm pattern from crispd: the translation is
            // built once per program x policy and shared by every run,
            // so machine setup is image zeroing alone. Prepared untimed
            // exactly like the shared PredecodeCache above.
            warm = std::make_unique<Translation>(
                u.prog, u.cfg.foldPolicy, shared.get(),
                u.cfg.enableChaining);
        }
        std::optional<Machine> cpu;
        const auto t0 = Clock::now();
        if constexpr (engine)
            cpu.emplace(u.prog, u.cfg, shared.get(), warm.get());
        else
            cpu.emplace(u.prog, u.cfg, shared.get());
        const double ctor = secondsSince(t0);
        m.setupSeconds += ctor;
        for (int r = 0; r < replays; ++r) {
            // Replays reuse the machine: reset() is the per-replay
            // setup cost, so it is timed as part of the hot loop.
            const auto t1 = Clock::now();
            if (r != 0)
                cpu->reset();
            const SimStats& s = cpu->run();
            const double hot = secondsSince(t1);
            m.hotSeconds += hot;
            m.endToEndSeconds += hot + (r == 0 ? ctor : 0.0);
            m.simInstructions += s.apparent;
            m.simCycles += s.cycles;
            if (s.faulted)
                throw CrispError("bench_perf: unit faulted: " +
                                 s.faultReason);
            if (!s.halted)
                throw CrispError("bench_perf: unit hit the cycle limit");
        }
    }
    return m;
}

/** Fold repetition @p m of a measurement into best-of @p best. */
void
keepBest(Measure& best, const Measure& m, int rep)
{
    if (rep == 0 || m.hotSeconds < best.hotSeconds)
        best = m;
}

std::vector<Unit>
withPath(std::vector<Unit> units, bool use_predecode)
{
    for (Unit& u : units)
        u.cfg.usePredecode = use_predecode;
    return units;
}

/**
 * Straight-line accumulator blocks chained by unconditional one-parcel
 * jumps: @p blocks blocks of @p ops_per_block accumulator adds, each
 * ending in a jmp to the block that follows it. No memory traffic, no
 * conditional exits — every block boundary is walkable, so with
 * chaining on the whole program retires as a few kTraceCap-bounded
 * superblock traces. The fast engine's best case by construction.
 */
Program
chainDenseProgram(int blocks, int ops_per_block)
{
    Program p;
    p.append(Instruction::mov(Operand::accum(), Operand::imm(0)));
    for (int b = 0; b < blocks; ++b) {
        for (int k = 0; k < ops_per_block; ++k) {
            const std::int32_t v = (b + k) % 7 + 1;
            p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                                      Operand::imm(v)));
        }
        // Jump to the immediately following block: architecturally a
        // no-op, but a real unconditional control transfer the trace
        // walker must chain across.
        p.append(Instruction::branchRel(Opcode::kJmp, 2));
    }
    p.append(Instruction::halt());
    p.entry = p.textBase;
    return p;
}

/** Loop body of ~@p stmts distinct instructions: far over the DIC. */
std::string
dicThrashSource(int stmts, int iters)
{
    std::ostringstream os;
    os << "int g;\nint main()\n{\n    int i;\n    g = 0;\n"
       << "    for (i = 0; i < " << iters << "; i++) {\n";
    for (int k = 0; k < stmts; ++k)
        os << "        g = g + " << (k + 1) << ";\n";
    os << "    }\n    return g;\n}\n";
    return os.str();
}

void
jsonMeasure(std::ostringstream& os, const char* key, const Measure& m)
{
    const double hot = m.hotSeconds > 0 ? m.hotSeconds : 1e-12;
    const double e2e =
        m.endToEndSeconds > 0 ? m.endToEndSeconds : 1e-12;
    os << "\"" << key << "\":{"
       << "\"hotSeconds\":" << m.hotSeconds
       << ",\"setupSeconds\":" << m.setupSeconds
       << ",\"endToEndSeconds\":" << m.endToEndSeconds
       << ",\"simInstructions\":" << m.simInstructions
       << ",\"simCycles\":" << m.simCycles
       << ",\"instrPerHostSec\":"
       << static_cast<double>(m.simInstructions) / hot
       << ",\"cyclesPerHostSec\":"
       << static_cast<double>(m.simCycles) / hot
       << ",\"instrPerHostSecEndToEnd\":"
       << static_cast<double>(m.simInstructions) / e2e << "}";
}

/**
 * The committed ratio named @p ratio_key for @p workload, pulled from
 * the baseline JSON by string scan (the value is written by this same
 * program, so the shape is known). Throws when the baseline predates
 * the current rows — the fix is regenerating BENCH_PERF.json, and the
 * message says so.
 */
double
committedRatio(const std::string& json, const std::string& workload,
               const std::string& ratio_key)
{
    const std::string tag = "\"name\":\"" + workload + "\"";
    const std::size_t at = json.find(tag);
    if (at == std::string::npos)
        throw CrispError("bench_perf: baseline lacks workload \"" +
                         workload + "\"");
    const std::string key = "\"" + ratio_key + "\":";
    const std::size_t k = json.find(key, at);
    const std::size_t next = json.find("\"name\":", at + tag.size());
    if (k == std::string::npos ||
        (next != std::string::npos && k > next)) {
        throw CrispError(
            "bench_perf: baseline has no " + ratio_key +
            " for \"" + workload +
            "\" (schema crisp-bench-perf/3 required; regenerate "
            "BENCH_PERF.json with bench_perf --out)");
    }
    return std::strtod(json.c_str() + k + key.size(), nullptr);
}

// ------------------------------------------------------- JSON checking

/**
 * Minimal recursive-descent JSON well-formedness check, so the harness
 * can validate its own output without external dependencies.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return literal("true") || literal("false") || literal("null");
    }

    bool
    object()
    {
        ++pos_; // {
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // [
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const char* start = s_.c_str() + pos_;
        char* end = nullptr;
        std::strtod(start, &end);
        if (end == start)
            return false;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_perf [--smoke] [--out=FILE] [--jobs=N] "
                 "[--reps=N] [--check-floor=FILE] [--no-chain]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_PERF.json";
    bool out_explicit = false;
    std::string floor_path;
    int jobs = util::ThreadPool::defaultThreads();
    int reps = 0; // 0: pick by mode
    // Ablation knob: run the fast engine without cross-branch trace
    // chaining (single-block superblocks), for chained-vs-unchained
    // comparisons in EXPERIMENTS.md. The cycle-simulator measures are
    // unaffected (chaining is a translation-level concept).
    bool no_chain = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--smoke") {
            smoke = true;
        } else if (const char* v = val("--out=")) {
            out_path = v;
            out_explicit = true;
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_explicit = true;
        } else if (const char* vf = val("--check-floor=")) {
            floor_path = vf;
        } else if (a == "--check-floor" && i + 1 < argc) {
            floor_path = argv[++i];
        } else if (const char* v2 = val("--jobs=")) {
            jobs = std::atoi(v2);
        } else if (const char* v3 = val("--reps=")) {
            reps = std::atoi(v3);
        } else if (a == "--no-chain") {
            no_chain = true;
        } else {
            return usage();
        }
    }
    if (jobs < 1)
        return usage();
    if (reps <= 0)
        reps = smoke ? 1 : 3;

    // Replay counts are sized so every measured window is at least
    // ~100 ms of host time: sub-millisecond windows made the floor
    // ratios a lottery against scheduler jitter on shared hosts.
    const int torture_seeds = smoke ? 12 : 200;
    const int torture_replays = smoke ? 3 : 100;
    const int fig3_loops = smoke ? 64 : 1024;
    const int table4_replays = smoke ? 1 : 32;
    const int thrash_stmts = smoke ? 60 : 120;
    const int thrash_iters = smoke ? 20 : 400;
    const int thrash_replays = smoke ? 1 : 16;
    const int chain_blocks = smoke ? 40 : 800;
    const int chain_ops = 14;
    const int chain_replays = smoke ? 5 : 600;

    try {
        util::ThreadPool pool(jobs);

        // Untimed preparation, fanned out per seed.
        std::vector<Unit> torture(
            static_cast<std::size_t>(torture_seeds));
        pool.parallelFor(torture.size(), [&](std::size_t i) {
            torture[i].prog =
                verify::generate(1 + static_cast<std::uint64_t>(i))
                    .link();
            torture[i].cfg = SimConfig{};
        });

        std::vector<Unit> torture_checked = torture;
        for (Unit& u : torture_checked)
            u.cfg.checkDecode = true;

        std::vector<Unit> table4(std::size(bench::kTable4Cases));
        const std::string fig3 = fig3Source(fig3_loops);
        pool.parallelFor(table4.size(), [&](std::size_t i) {
            const bench::Table4Case& c = bench::kTable4Cases[i];
            cc::CompileOptions opts;
            opts.spread = c.spread;
            opts.predict = c.predict;
            table4[i].prog = cc::compile(fig3, opts).program;
            table4[i].cfg = SimConfig{};
            table4[i].cfg.foldPolicy = c.fold;
        });

        std::vector<Unit> thrash(1);
        thrash[0].prog =
            cc::compile(dicThrashSource(thrash_stmts, thrash_iters), {})
                .program;
        thrash[0].cfg = SimConfig{};

        std::vector<Unit> chain(1);
        chain[0].prog = chainDenseProgram(chain_blocks, chain_ops);
        chain[0].cfg = SimConfig{};

        if (no_chain) {
            for (auto* units :
                 {&torture, &torture_checked, &table4, &thrash, &chain})
                for (Unit& u : *units)
                    u.cfg.enableChaining = false;
        }

        struct Row
        {
            const char* name;
            const std::vector<Unit>* units;
            int replays;
        };
        const Row rows[] = {
            {"torture_replay", &torture, torture_replays},
            {"torture_replay_checked", &torture_checked,
             torture_replays},
            {"table4_fig3", &table4, table4_replays},
            {"dic_thrash", &thrash, thrash_replays},
            {"chain_dense", &chain, chain_replays},
        };

        std::ostringstream os;
        os << "{\"schema\":\"crisp-bench-perf/3\""
           << ",\"mode\":\"" << (smoke ? "smoke" : "full") << "\""
           << ",\"chaining\":" << (no_chain ? "false" : "true")
           << ",\"jobs\":" << jobs << ",\"reps\":" << reps
           << ",\"workloads\":[";
        bool first = true;
        struct Speedup
        {
            std::string name;
            double hot = 0;
            double e2e = 0;
        };
        std::vector<Speedup> speedups;
        for (const Row& row : rows) {
            // Interleave the three machines inside each repetition —
            // cycle-sim fast path and engine back-to-back — so a slow
            // or fast host phase hits both sides of every ratio
            // equally. Measuring all reps of one machine before the
            // next made the floor ratios a function of multi-second
            // host drift, not of the code.
            const std::vector<Unit> fast_units =
                withPath(*row.units, true);
            const std::vector<Unit> legacy_units =
                withPath(*row.units, false);
            Measure fast, legacy, engine;
            for (int r = 0; r < reps; ++r) {
                keepBest(fast, runOnce<CrispCpu>(fast_units,
                                                 row.replays), r);
                keepBest(engine, runOnce<FastEngine>(fast_units,
                                                     row.replays), r);
                keepBest(legacy, runOnce<CrispCpu>(legacy_units,
                                                   row.replays), r);
            }
            const double engine_x = fast.hotSeconds > 0 &&
                                            engine.hotSeconds > 0
                                        ? fast.hotSeconds /
                                              engine.hotSeconds
                                        : 0.0;
            const double engine_e2e_x =
                fast.endToEndSeconds > 0 && engine.endToEndSeconds > 0
                    ? fast.endToEndSeconds / engine.endToEndSeconds
                    : 0.0;
            speedups.push_back({row.name, engine_x, engine_e2e_x});
            if (!first)
                os << ",";
            first = false;
            os << "{\"name\":\"" << row.name << "\""
               << ",\"units\":" << row.units->size()
               << ",\"replays\":" << row.replays << ",";
            jsonMeasure(os, "fast", fast);
            os << ",";
            jsonMeasure(os, "legacy", legacy);
            os << ",";
            jsonMeasure(os, "fastengine", engine);
            os << ",\"hotSpeedupFastOverLegacy\":"
               << (fast.hotSeconds > 0
                       ? legacy.hotSeconds / fast.hotSeconds
                       : 0.0)
               << ",\"hotSpeedupEngineOverFast\":" << engine_x
               << ",\"e2eSpeedupEngineOverFast\":" << engine_e2e_x
               << "}";
            std::fprintf(
                stderr,
                "bench_perf: %-24s fast %8.2f Minstr/s "
                "(%8.2f Mcyc/s), legacy %8.2f Minstr/s, x%.2f; "
                "engine %8.2f Minstr/s hot / %8.2f e2e, "
                "x%.2f/x%.2f\n",
                row.name,
                static_cast<double>(fast.simInstructions) /
                    fast.hotSeconds / 1e6,
                static_cast<double>(fast.simCycles) /
                    fast.hotSeconds / 1e6,
                static_cast<double>(legacy.simInstructions) /
                    legacy.hotSeconds / 1e6,
                legacy.hotSeconds / fast.hotSeconds,
                static_cast<double>(engine.simInstructions) /
                    engine.hotSeconds / 1e6,
                static_cast<double>(engine.simInstructions) /
                    engine.endToEndSeconds / 1e6,
                engine_x, engine_e2e_x);
        }
        os << "]}";

        if (!floor_path.empty()) {
            std::ifstream in(floor_path);
            if (!in)
                throw CrispError("bench_perf: cannot read baseline: " +
                                 floor_path);
            std::stringstream ss;
            ss << in.rdbuf();
            const std::string base = ss.str();
            bool ok = true;
            for (const Speedup& sp : speedups) {
                const struct
                {
                    const char* key;
                    const char* what;
                    double got;
                } checks[] = {
                    {"hotSpeedupEngineOverFast", "hot", sp.hot},
                    {"e2eSpeedupEngineOverFast", "e2e", sp.e2e},
                };
                for (const auto& c : checks) {
                    const double want =
                        committedRatio(base, sp.name, c.key);
                    const double floor = 0.6 * want;
                    std::fprintf(
                        stderr,
                        "bench_perf: %-24s engine %s speedup x%.2f "
                        "(committed x%.2f, floor x%.2f)%s\n",
                        sp.name.c_str(), c.what, c.got, want, floor,
                        c.got >= floor ? "" : "  <-- BELOW FLOOR");
                    if (c.got < floor)
                        ok = false;
                }
            }
            if (!ok) {
                std::fprintf(
                    stderr,
                    "bench_perf: fast-engine hot loop regressed more "
                    "than 40%% relative to %s\n",
                    floor_path.c_str());
                return 1;
            }
            std::printf("bench_perf floor check: ok\n");
            if (!out_explicit)
                return 0; // comparison run: nothing to record
        }

        const std::string json = os.str();
        if (!JsonChecker(json).valid())
            throw CrispError(
                "bench_perf: generated JSON failed validation");
        std::ofstream out(out_path);
        if (!out)
            throw CrispError("bench_perf: cannot write: " + out_path);
        out << json << "\n";
        out.close();
        std::fprintf(stderr, "bench_perf: wrote %s (%zu bytes)\n",
                     out_path.c_str(), json.size() + 1);
        if (smoke)
            std::printf("bench_perf smoke: ok\n");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_perf: %s\n", e.what());
        return 1;
    }
}
