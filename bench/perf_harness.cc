/**
 * @file
 * bench_perf — host-performance harness for the cycle-level simulator.
 *
 *   bench_perf [--smoke] [--out=FILE | --out FILE] [--jobs=N]
 *              [--reps=N] [--check-floor=FILE]
 *
 * Times three workload families with std::chrono::steady_clock, each
 * under three execution paths — the cycle simulator's predecode fast
 * path, its SimConfig::usePredecode = false legacy path, and the
 * direct-threaded functional FastEngine (one engine per unit, a shared
 * PredecodeCache, FastEngine::reset() between replays, exactly the way
 * crisptorture --engine-diff replays programs):
 *
 *  - torture_replay: replays the torture generator's programs (the same
 *    seeds the differential suite sweeps) on the default CRISP
 *    configuration. Each program is replayed several times, the way
 *    crisptorture actually uses them (one run per lockstep config, per
 *    fault kind, per shrinking step): one CrispCpu per program,
 *    CrispCpu::reset() between replays (timed as hot-loop work), and on
 *    the fast path all replays share one PredecodeCache, so runs after
 *    the first do no decode work at all. torture_replay_checked adds
 *    the retire-time decode checker, the worst case for decode
 *    overhead.
 *  - table4_fig3: the paper's Figure 3 program compiled for all five
 *    Table 4 cases.
 *  - dic_thrash: a loop whose body far exceeds the 32-entry DIC, so the
 *    PDU re-decodes the working set every iteration.
 *
 * Two times are reported per measurement: hotSeconds (CrispCpu::run
 * only — the hot loop the PR optimizes) and endToEndSeconds (adds
 * CrispCpu construction, which is dominated by zeroing the 256 KiB
 * memory image). Rates are simulated instructions (architectural) and
 * simulated cycles per host second, best of --reps repetitions.
 *
 * Program preparation (generation, linking, compilation) fans out over
 * a thread pool (--jobs) and is never timed. The measured runs are
 * strictly sequential so one run never steals cycles from another.
 *
 * Output: a single JSON object (schema "crisp-bench-perf/2", described
 * in docs/PERFORMANCE.md) written to --out (default BENCH_PERF.json)
 * and validated by re-parsing before exit. --smoke shrinks every
 * workload to fractions of a second and is wired into ctest.
 *
 * --check-floor=FILE compares this run against the committed
 * BENCH_PERF.json instead of writing one. Absolute instr/s depends on
 * the host, so the check is ratio-normalized: for every workload the
 * measured fastengine-over-cycle hot-loop speedup must be at least
 * 0.75x the committed speedup — a >25% relative regression of the
 * threaded engine fails the build on any machine. Wired into ctest
 * except under sanitizers, whose overhead distorts the ratio.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"
#include "sim/predecode.hh"
#include "util/thread_pool.hh"
#include "verify/generator.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One program + configuration to simulate. */
struct Unit
{
    Program prog;
    SimConfig cfg;
};

struct Measure
{
    double hotSeconds = 0.0;
    double endToEndSeconds = 0.0;
    std::uint64_t simInstructions = 0;
    std::uint64_t simCycles = 0;
};

/**
 * Run every unit @p replays times, timing construction and run
 * separately. On the predecode path all replays of a unit share one
 * PredecodeCache (the crisptorture usage pattern: the same program runs
 * once per lockstep config / fault kind / shrink step), so replays
 * after the first skip decode work entirely. The stats must describe a
 * clean halt: a fault or timeout means the harness is measuring a
 * broken simulation and must say so.
 */
template <class Machine>
Measure
runOnce(const std::vector<Unit>& units, int replays)
{
    constexpr bool engine = std::is_same_v<Machine, FastEngine>;
    Measure m;
    for (const Unit& u : units) {
        std::unique_ptr<PredecodeCache> shared;
        if (engine || u.cfg.usePredecode)
            shared = std::make_unique<PredecodeCache>(u.prog);
        const auto t0 = Clock::now();
        Machine cpu(u.prog, u.cfg, shared.get());
        const double ctor =
            std::chrono::duration<double>(Clock::now() - t0).count();
        for (int r = 0; r < replays; ++r) {
            // Replays reuse the machine: reset() is the per-replay
            // setup cost, so it is timed as part of the hot loop.
            const auto t1 = Clock::now();
            if (r != 0)
                cpu.reset();
            const SimStats& s = cpu.run();
            const double hot = secondsSince(t1);
            m.hotSeconds += hot;
            m.endToEndSeconds += hot + (r == 0 ? ctor : 0.0);
            m.simInstructions += s.apparent;
            m.simCycles += s.cycles;
            if (s.faulted)
                throw CrispError("bench_perf: unit faulted: " +
                                 s.faultReason);
            if (!s.halted)
                throw CrispError("bench_perf: unit hit the cycle limit");
        }
    }
    return m;
}

/** Best (fastest hot loop) of @p reps repetitions. */
template <class Machine = CrispCpu>
Measure
measure(const std::vector<Unit>& units, int replays, int reps)
{
    Measure best;
    for (int r = 0; r < reps; ++r) {
        const Measure m = runOnce<Machine>(units, replays);
        if (r == 0 || m.hotSeconds < best.hotSeconds)
            best = m;
    }
    return best;
}

std::vector<Unit>
withPath(std::vector<Unit> units, bool use_predecode)
{
    for (Unit& u : units)
        u.cfg.usePredecode = use_predecode;
    return units;
}

/** Loop body of ~@p stmts distinct instructions: far over the DIC. */
std::string
dicThrashSource(int stmts, int iters)
{
    std::ostringstream os;
    os << "int g;\nint main()\n{\n    int i;\n    g = 0;\n"
       << "    for (i = 0; i < " << iters << "; i++) {\n";
    for (int k = 0; k < stmts; ++k)
        os << "        g = g + " << (k + 1) << ";\n";
    os << "    }\n    return g;\n}\n";
    return os.str();
}

void
jsonMeasure(std::ostringstream& os, const char* key, const Measure& m)
{
    const double hot = m.hotSeconds > 0 ? m.hotSeconds : 1e-12;
    const double e2e =
        m.endToEndSeconds > 0 ? m.endToEndSeconds : 1e-12;
    os << "\"" << key << "\":{"
       << "\"hotSeconds\":" << m.hotSeconds
       << ",\"endToEndSeconds\":" << m.endToEndSeconds
       << ",\"simInstructions\":" << m.simInstructions
       << ",\"simCycles\":" << m.simCycles
       << ",\"instrPerHostSec\":"
       << static_cast<double>(m.simInstructions) / hot
       << ",\"cyclesPerHostSec\":"
       << static_cast<double>(m.simCycles) / hot
       << ",\"instrPerHostSecEndToEnd\":"
       << static_cast<double>(m.simInstructions) / e2e << "}";
}

/**
 * The committed hotSpeedupEngineOverFast for @p workload, pulled from
 * the baseline JSON by string scan (the value is written by this same
 * program, so the shape is known). Throws when the baseline predates
 * the fastengine rows — the fix is regenerating BENCH_PERF.json, and
 * the message says so.
 */
double
committedSpeedup(const std::string& json, const std::string& workload)
{
    const std::string tag = "\"name\":\"" + workload + "\"";
    const std::size_t at = json.find(tag);
    if (at == std::string::npos)
        throw CrispError("bench_perf: baseline lacks workload \"" +
                         workload + "\"");
    const std::string key = "\"hotSpeedupEngineOverFast\":";
    const std::size_t k = json.find(key, at);
    const std::size_t next = json.find("\"name\":", at + tag.size());
    if (k == std::string::npos ||
        (next != std::string::npos && k > next)) {
        throw CrispError(
            "bench_perf: baseline has no fastengine row for \"" +
            workload +
            "\" (schema crisp-bench-perf/2 required; regenerate "
            "BENCH_PERF.json with bench_perf --out)");
    }
    return std::strtod(json.c_str() + k + key.size(), nullptr);
}

// ------------------------------------------------------- JSON checking

/**
 * Minimal recursive-descent JSON well-formedness check, so the harness
 * can validate its own output without external dependencies.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return literal("true") || literal("false") || literal("null");
    }

    bool
    object()
    {
        ++pos_; // {
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // [
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const char* start = s_.c_str() + pos_;
        char* end = nullptr;
        std::strtod(start, &end);
        if (end == start)
            return false;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_perf [--smoke] [--out=FILE] [--jobs=N] "
                 "[--reps=N] [--check-floor=FILE]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_PERF.json";
    bool out_explicit = false;
    std::string floor_path;
    int jobs = util::ThreadPool::defaultThreads();
    int reps = 0; // 0: pick by mode

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--smoke") {
            smoke = true;
        } else if (const char* v = val("--out=")) {
            out_path = v;
            out_explicit = true;
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_explicit = true;
        } else if (const char* vf = val("--check-floor=")) {
            floor_path = vf;
        } else if (a == "--check-floor" && i + 1 < argc) {
            floor_path = argv[++i];
        } else if (const char* v2 = val("--jobs=")) {
            jobs = std::atoi(v2);
        } else if (const char* v3 = val("--reps=")) {
            reps = std::atoi(v3);
        } else {
            return usage();
        }
    }
    if (jobs < 1)
        return usage();
    if (reps <= 0)
        reps = smoke ? 1 : 3;

    const int torture_seeds = smoke ? 12 : 200;
    const int torture_replays = smoke ? 3 : 25;
    const int fig3_loops = smoke ? 64 : 1024;
    const int thrash_stmts = smoke ? 60 : 120;
    const int thrash_iters = smoke ? 20 : 400;

    try {
        util::ThreadPool pool(jobs);

        // Untimed preparation, fanned out per seed.
        std::vector<Unit> torture(
            static_cast<std::size_t>(torture_seeds));
        pool.parallelFor(torture.size(), [&](std::size_t i) {
            torture[i].prog =
                verify::generate(1 + static_cast<std::uint64_t>(i))
                    .link();
            torture[i].cfg = SimConfig{};
        });

        std::vector<Unit> torture_checked = torture;
        for (Unit& u : torture_checked)
            u.cfg.checkDecode = true;

        std::vector<Unit> table4(std::size(bench::kTable4Cases));
        const std::string fig3 = fig3Source(fig3_loops);
        pool.parallelFor(table4.size(), [&](std::size_t i) {
            const bench::Table4Case& c = bench::kTable4Cases[i];
            cc::CompileOptions opts;
            opts.spread = c.spread;
            opts.predict = c.predict;
            table4[i].prog = cc::compile(fig3, opts).program;
            table4[i].cfg = SimConfig{};
            table4[i].cfg.foldPolicy = c.fold;
        });

        std::vector<Unit> thrash(1);
        thrash[0].prog =
            cc::compile(dicThrashSource(thrash_stmts, thrash_iters), {})
                .program;
        thrash[0].cfg = SimConfig{};

        struct Row
        {
            const char* name;
            const std::vector<Unit>* units;
            int replays;
        };
        const Row rows[] = {
            {"torture_replay", &torture, torture_replays},
            {"torture_replay_checked", &torture_checked,
             torture_replays},
            {"table4_fig3", &table4, 1},
            {"dic_thrash", &thrash, 1},
        };

        std::ostringstream os;
        os << "{\"schema\":\"crisp-bench-perf/2\""
           << ",\"mode\":\"" << (smoke ? "smoke" : "full") << "\""
           << ",\"jobs\":" << jobs << ",\"reps\":" << reps
           << ",\"workloads\":[";
        bool first = true;
        std::vector<std::pair<std::string, double>> speedups;
        for (const Row& row : rows) {
            const Measure fast =
                measure(withPath(*row.units, true), row.replays, reps);
            const Measure legacy =
                measure(withPath(*row.units, false), row.replays, reps);
            const Measure engine = measure<FastEngine>(
                withPath(*row.units, true), row.replays, reps);
            const double engine_x = fast.hotSeconds > 0 &&
                                            engine.hotSeconds > 0
                                        ? fast.hotSeconds /
                                              engine.hotSeconds
                                        : 0.0;
            speedups.emplace_back(row.name, engine_x);
            if (!first)
                os << ",";
            first = false;
            os << "{\"name\":\"" << row.name << "\""
               << ",\"units\":" << row.units->size()
               << ",\"replays\":" << row.replays << ",";
            jsonMeasure(os, "fast", fast);
            os << ",";
            jsonMeasure(os, "legacy", legacy);
            os << ",";
            jsonMeasure(os, "fastengine", engine);
            os << ",\"hotSpeedupFastOverLegacy\":"
               << (fast.hotSeconds > 0
                       ? legacy.hotSeconds / fast.hotSeconds
                       : 0.0)
               << ",\"hotSpeedupEngineOverFast\":" << engine_x << "}";
            std::fprintf(
                stderr,
                "bench_perf: %-24s fast %8.2f Minstr/s "
                "(%8.2f Mcyc/s), legacy %8.2f Minstr/s, x%.2f; "
                "engine %8.2f Minstr/s, x%.2f\n",
                row.name,
                static_cast<double>(fast.simInstructions) /
                    fast.hotSeconds / 1e6,
                static_cast<double>(fast.simCycles) /
                    fast.hotSeconds / 1e6,
                static_cast<double>(legacy.simInstructions) /
                    legacy.hotSeconds / 1e6,
                legacy.hotSeconds / fast.hotSeconds,
                static_cast<double>(engine.simInstructions) /
                    engine.hotSeconds / 1e6,
                engine_x);
        }
        os << "]}";

        if (!floor_path.empty()) {
            std::ifstream in(floor_path);
            if (!in)
                throw CrispError("bench_perf: cannot read baseline: " +
                                 floor_path);
            std::stringstream ss;
            ss << in.rdbuf();
            const std::string base = ss.str();
            bool ok = true;
            for (const auto& [name, got] : speedups) {
                const double want = committedSpeedup(base, name);
                const double floor = 0.75 * want;
                std::fprintf(stderr,
                             "bench_perf: %-24s engine speedup x%.2f "
                             "(committed x%.2f, floor x%.2f)%s\n",
                             name.c_str(), got, want, floor,
                             got >= floor ? "" : "  <-- BELOW FLOOR");
                if (got < floor)
                    ok = false;
            }
            if (!ok) {
                std::fprintf(
                    stderr,
                    "bench_perf: fast-engine hot loop regressed more "
                    "than 25%% relative to %s\n",
                    floor_path.c_str());
                return 1;
            }
            std::printf("bench_perf floor check: ok\n");
            if (!out_explicit)
                return 0; // comparison run: nothing to record
        }

        const std::string json = os.str();
        if (!JsonChecker(json).valid())
            throw CrispError(
                "bench_perf: generated JSON failed validation");
        std::ofstream out(out_path);
        if (!out)
            throw CrispError("bench_perf: cannot write: " + out_path);
        out << json << "\n";
        out.close();
        std::fprintf(stderr, "bench_perf: wrote %s (%zu bytes)\n",
                     out_path.c_str(), json.size() + 1);
        if (smoke)
            std::printf("bench_perf smoke: ok\n");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_perf: %s\n", e.what());
        return 1;
    }
}
