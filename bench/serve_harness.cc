/**
 * @file
 * bench_serve — service-level throughput/latency harness for the
 * crispd core (SimService driven in-process; no socket, so the numbers
 * isolate the service machinery from kernel buffer behaviour).
 *
 *   bench_serve [--smoke] [--out=FILE] [--clients=N] [--jobs=N]
 *               [--workers=N]
 *
 * N client threads (default 8) each run a closed loop: submit one job,
 * wait for its terminal state, submit the next. Per-job latency is
 * submit-to-completion (including queueing), reported as p50/p99;
 * throughput is total terminal states per wall second. Three scenarios
 * cover the three cost regimes a real mix blends:
 *
 *  - cold: every job is a distinct program — full admission + decode +
 *    simulation; the result cache never hits.
 *  - shared_predecode: one program, but a distinct cycle budget per
 *    job, so the result cache misses while every run shares the one
 *    warmed predecode table (the PR 2 tables, multi-tenant).
 *  - hot_cache: identical requests — after the first, pure result-cache
 *    lookups; this bounds the service overhead per request.
 *
 * Output: one JSON object (schema "crisp-bench-serve/1") written to
 * --out (default BENCH_SERVE.json). Every run also asserts the ledger
 * invariant and exactly-one-completion before reporting. --smoke
 * shrinks the job counts and is wired into ctest.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "isa/objfile.hh"
#include "service/service.hh"

namespace
{

using namespace crisp;
using namespace crisp::service;
using Clock = std::chrono::steady_clock;

std::vector<std::uint8_t>
countedImage(int count)
{
    std::string src = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    const std::string key = "%N%";
    src.replace(src.find(key), key.size(), std::to_string(count));
    return saveObject(assemble(src));
}

struct ScenarioResult
{
    std::string name;
    int jobs = 0;
    double seconds = 0;
    double jobsPerSec = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    std::uint64_t done = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t predecodeShares = 0;
    std::uint64_t translationShares = 0;
};

double
percentile(std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/**
 * One closed-loop scenario. @p image_for maps (client, iteration) to
 * the object image; @p cycles_for to the per-job cycle budget.
 */
template <typename ImageFn, typename CyclesFn>
ScenarioResult
runScenario(const std::string& name, int clients, int jobs_per_client,
            int workers, ImageFn image_for, CyclesFn cycles_for,
            EngineKind engine = EngineKind::kCycle)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queueCap = static_cast<std::size_t>(clients) * 2;
    SimService service(cfg);

    std::atomic<std::uint64_t> next_id{1};
    std::atomic<int> wrong{0};
    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(clients));
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < jobs_per_client; ++i) {
                JobRequest req;
                req.jobId = next_id.fetch_add(1);
                req.image = image_for(t, i);
                req.engine = engine;
                req.maxCycles = cycles_for(t, i);
                req.deadlineMs = 60'000;
                std::promise<JobState> done;
                auto fut = done.get_future();
                const auto start = Clock::now();
                const auto st = service.submit(
                    req, [&done](const JobResult& res) {
                        done.set_value(res.state);
                    });
                if (st != SubmitStatus::kAccepted) {
                    ++wrong;
                    continue;
                }
                const JobState state = fut.get();
                const auto end = Clock::now();
                if (state != JobState::kDone)
                    ++wrong;
                lat[static_cast<std::size_t>(t)].push_back(
                    std::chrono::duration<double, std::milli>(end -
                                                              start)
                        .count());
            }
        });
    }
    for (auto& th : threads)
        th.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    service.shutdown(true);
    const LedgerSnapshot ledger = service.ledger();

    if (wrong.load() != 0 || !ledger.consistent() ||
        ledger.queued != 0 || ledger.inFlight != 0) {
        std::fprintf(stderr,
                     "bench_serve: scenario %s violated the service "
                     "invariants (wrong=%d consistent=%d)\n",
                     name.c_str(), wrong.load(),
                     ledger.consistent() ? 1 : 0);
        std::exit(1);
    }

    std::vector<double> all;
    for (const auto& v : lat)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    ScenarioResult r;
    r.name = name;
    r.jobs = clients * jobs_per_client;
    r.seconds = seconds;
    r.jobsPerSec = seconds > 0 ? r.jobs / seconds : 0;
    r.p50Ms = percentile(all, 0.50);
    r.p99Ms = percentile(all, 0.99);
    r.done = ledger.done;
    r.cacheHits = ledger.resultCacheHits;
    r.predecodeShares = ledger.predecodeShares;
    r.translationShares = ledger.translationShares;
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_SERVE.json";
    int clients = 8;
    int jobs = 64;
    int workers = 4;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--smoke") {
            smoke = true;
        } else if (const char* v = val("--out=")) {
            out_path = v;
        } else if (const char* v2 = val("--clients=")) {
            clients = std::atoi(v2);
        } else if (const char* v3 = val("--jobs=")) {
            jobs = std::atoi(v3);
        } else if (const char* v4 = val("--workers=")) {
            workers = std::atoi(v4);
        } else {
            std::fprintf(stderr,
                         "usage: bench_serve [--smoke] [--out=FILE] "
                         "[--clients=N] [--jobs=N] [--workers=N]\n");
            return 2;
        }
    }
    if (smoke)
        jobs = std::min(jobs, 4);

    // The loop length keeps one simulation in the hundreds of
    // microseconds: long enough that the cold scenario measures the
    // simulator, short enough that the sweep is quick.
    constexpr int kLoop = 50'000;

    std::vector<ScenarioResult> results;
    results.push_back(runScenario(
        "cold", clients, jobs, workers,
        [&](int t, int i) { return countedImage(kLoop + t * jobs + i); },
        [](int, int) { return std::uint64_t{0}; }));
    const auto shared_image = countedImage(kLoop);
    results.push_back(runScenario(
        "shared_predecode", clients, jobs, workers,
        [&](int, int) { return shared_image; },
        [&](int t, int i) {
            // Distinct cycle budgets defeat the result cache without
            // changing the program, so every run simulates on the one
            // warmed predecode table.
            return std::uint64_t{10'000'000} +
                   static_cast<std::uint64_t>(t * jobs + i);
        }));
    results.push_back(runScenario(
        "hot_cache", clients, jobs, workers,
        [&](int, int) { return shared_image; },
        [](int, int) { return std::uint64_t{0}; }));
    results.push_back(runScenario(
        "warm_engine", clients, jobs, workers,
        [&](int, int) { return shared_image; },
        [&](int t, int i) {
            // Same defeat-the-result-cache trick as shared_predecode,
            // but on the fast engine: every job reuses the registry's
            // warm Translation (translationShares counts the reuses).
            return std::uint64_t{10'000'000} +
                   static_cast<std::uint64_t>(t * jobs + i);
        },
        EngineKind::kFast));

    std::ostringstream os;
    os << "{\"schema\":\"crisp-bench-serve/2\",\"mode\":\""
       << (smoke ? "smoke" : "full") << "\",\"clients\":" << clients
       << ",\"jobsPerClient\":" << jobs << ",\"workers\":" << workers
       << ",\"scenarios\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        if (i)
            os << ",";
        os << "{\"name\":\"" << r.name << "\",\"jobs\":" << r.jobs
           << ",\"seconds\":" << r.seconds
           << ",\"jobsPerSec\":" << r.jobsPerSec
           << ",\"p50Ms\":" << r.p50Ms << ",\"p99Ms\":" << r.p99Ms
           << ",\"done\":" << r.done << ",\"cacheHits\":" << r.cacheHits
           << ",\"predecodeShares\":" << r.predecodeShares
           << ",\"translationShares\":" << r.translationShares << "}";
    }
    os << "]}";

    std::ofstream f(out_path);
    f << os.str() << "\n";
    if (!f) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    for (const ScenarioResult& r : results)
        std::fprintf(stderr,
                     "%-17s %6.0f jobs/s  p50 %7.3f ms  p99 %7.3f ms  "
                     "(done=%llu cacheHits=%llu shares=%llu "
                     "transShares=%llu)\n",
                     r.name.c_str(), r.jobsPerSec, r.p50Ms, r.p99Ms,
                     static_cast<unsigned long long>(r.done),
                     static_cast<unsigned long long>(r.cacheHits),
                     static_cast<unsigned long long>(r.predecodeShares),
                     static_cast<unsigned long long>(
                         r.translationShares));
    std::fprintf(stderr, "bench_serve %s: ok (%s)\n",
                 smoke ? "smoke" : "full", out_path.c_str());
    return 0;
}
