/**
 * @file
 * Ablation: trip-count independence. The paper: "The loop count of
 * 1024 is high enough to overcome about 50 cycles of initial overhead
 * ... The results are relatively independent of the actual loop
 * count." This bench sweeps the Figure 3 trip count and shows the
 * per-iteration steady state is constant while only the amortized
 * startup moves the aggregate CPI.
 */

#include <cstdio>

#include "common.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("Figure 3 trip-count sweep (full CRISP configuration)\n");
    std::printf("%-8s %10s %10s %8s %8s %14s\n", "loops", "cycles",
                "issued", "iCPI", "aCPI", "cyc/iter (marg)");

    std::uint64_t prev_cycles = 0;
    int prev_loops = 0;
    for (int loops : {16, 64, 256, 1024, 4096, 16384}) {
        const SimStats s = bench::runCase(fig3Source(loops),
                                          bench::kTable4Cases[3]);
        double marginal = 0;
        if (prev_loops != 0) {
            marginal = static_cast<double>(s.cycles - prev_cycles) /
                       (loops - prev_loops);
        }
        std::printf("%-8d %10llu %10llu %8.3f %8.3f %14.3f\n", loops,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.issued),
                    s.issuedCpi(), s.apparentCpi(), marginal);
        prev_cycles = s.cycles;
        prev_loops = loops;
    }
    std::printf("\nThe marginal cost settles at exactly 7 cycles per "
                "iteration (7 issued decoded\ninstructions, zero branch "
                "cost), demonstrating the paper's claim that the\n"
                "steady state is independent of the trip count.\n");
    return 0;
}
