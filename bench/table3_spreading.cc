/**
 * @file
 * Reproduces the paper's Table 3: "CRISP Code for loop before and
 * after Branch Spreading" — the compiled Figure 3 loop listings.
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;
    const std::string src = fig3Source(1024);

    cc::CompileOptions before;
    before.spread = false;
    cc::CompileOptions after;
    after.spread = true;

    const auto rb = cc::compile(src, before);
    const auto ra = cc::compile(src, after);

    std::printf("Table 3: CRISP code for the Figure 3 loop, before and "
                "after Branch Spreading\n\n");
    std::printf("=== without Branch Spreading ===\n%s\n",
                rb.listing.c_str());
    std::printf("=== with Branch Spreading ===\n%s\n",
                ra.listing.c_str());
    std::printf(
        "Paper's loop (left column):  add sum,i / and3 i,1 / "
        "cmp.= Accum,0 / ifTjmp / add odd,1 /\n"
        "  jmp / add even,1 / mov j,sum / add i,1 / cmp.s< i,1024 / "
        "ifTjmp\n"
        "Paper's loop (right column): and3 i,1 / cmp.= Accum,0 / "
        "add sum,i / add i,1 / mov j,sum /\n"
        "  ifTjmp / ... / cmp.s< i,1024 / ifTjmp\n"
        "The spread version separates the unpredictable if-branch from "
        "its compare by three\n"
        "useful instructions, so its outcome is known at issue time.\n");
    return 0;
}
