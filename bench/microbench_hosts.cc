/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * simulator stack itself — useful when using crispsim as a library.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "baseline/delayed.hh"
#include "isa/objfile.hh"
#include "predict/predictors.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;

void
BM_Compile(benchmark::State& state)
{
    const std::string src = workload("dhry").source;
    for (auto _ : state) {
        auto r = cc::compile(src);
        benchmark::DoNotOptimize(r.program.text.data());
    }
}
BENCHMARK(BM_Compile);

void
BM_Assemble(benchmark::State& state)
{
    const std::string src = R"(
        .entry start
        .global g 0
start:  mov g, 5
loop:   sub g, 1
        cmp.s> g, 0
        iftjmpy loop
        halt
    )";
    for (auto _ : state) {
        Program p = assemble(src);
        benchmark::DoNotOptimize(p.text.data());
    }
}
BENCHMARK(BM_Assemble);

void
BM_InterpreterMips(benchmark::State& state)
{
    const auto r = cc::compile(fig3Source(1024));
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        Interpreter interp(r.program);
        const InterpResult res = interp.run();
        instructions += res.instructions;
    }
    state.counters["guest_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterMips);

void
BM_PipelineCyclesPerSec(benchmark::State& state)
{
    const auto r = cc::compile(fig3Source(1024));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        CrispCpu cpu(r.program);
        cycles += cpu.run().cycles;
    }
    state.counters["guest_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineCyclesPerSec);

void
BM_DecodeFold(benchmark::State& state)
{
    std::vector<Parcel> window;
    encodeAppend(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                                  Operand::imm(1)),
                 window);
    encodeAppend(Instruction::branchRel(Opcode::kJmp, 0x40), window);
    FoldDecoder dec(FoldPolicy::kCrisp);
    for (auto _ : state) {
        auto di = dec.decodeAt(0x1000, window, true);
        benchmark::DoNotOptimize(di);
    }
}
BENCHMARK(BM_DecodeFold);


void
BM_PipelineWorkloadDhry(benchmark::State& state)
{
    const auto r = cc::compile(workload("dhry").source);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        CrispCpu cpu(r.program);
        cycles += cpu.run().cycles;
    }
    state.counters["guest_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineWorkloadDhry);

void
BM_DelayedMachine(benchmark::State& state)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = cc::compile(fig3Source(1024), opts);
    for (auto _ : state) {
        DelayedBranchCpu cpu(r.program);
        benchmark::DoNotOptimize(cpu.run().cycles);
    }
}
BENCHMARK(BM_DelayedMachine);

void
BM_PredictorEvaluation(benchmark::State& state)
{
    const auto r = cc::compile(workload("cwhet").source);
    Interpreter interp(r.program);
    BranchTraceRecorder rec;
    interp.run(500'000'000, &rec);
    for (auto _ : state) {
        CounterPredictor p(2);
        benchmark::DoNotOptimize(
            evaluateDirection(rec.events, p).correct);
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(rec.events.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredictorEvaluation);

void
BM_ObjectRoundTrip(benchmark::State& state)
{
    const auto r = cc::compile(workload("dhry").source);
    for (auto _ : state) {
        const auto bytes = saveObject(r.program);
        Program back = loadObject(bytes);
        benchmark::DoNotOptimize(back.text.data());
    }
}
BENCHMARK(BM_ObjectRoundTrip);

} // namespace

BENCHMARK_MAIN();
