/**
 * @file
 * Reproduces the paper's Table 2: dynamic instruction counts for the
 * Figure 3 program. The paper compares CRISP against a VAX compiled by
 * the same-era compilers and finds essentially identical counts
 * (9,734 vs 9,736); we print the CRISP histogram and check it against
 * the paper's column.
 *
 * Paper CRISP column: add 3072, if-jump 2048, cmp 2048, move 1027,
 * and 1024, jump 513, enter 1, return 1; total 9,734.
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "vax/vax.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;
    const auto r = cc::compile(fig3Source(1024));
    Interpreter interp(r.program);
    const InterpResult res = interp.run();

    std::printf("Table 2: Instruction counts for the program of Figure "
                "3 (CRISP)\n\n%s\n",
                res.histogramTable().c_str());

    auto count = [&](Opcode a, Opcode b = Opcode::kNumOpcodes) {
        return res.count(a) +
               (b == Opcode::kNumOpcodes ? 0 : res.count(b));
    };
    struct Row
    {
        const char* name;
        std::uint64_t mine;
        std::uint64_t paper;
    };
    const std::uint64_t cmps = res.count(Opcode::kCmpEq) +
                               res.count(Opcode::kCmpNe) +
                               res.count(Opcode::kCmpLt) +
                               res.count(Opcode::kCmpLe) +
                               res.count(Opcode::kCmpGt) +
                               res.count(Opcode::kCmpGe) +
                               res.count(Opcode::kCmpLtU) +
                               res.count(Opcode::kCmpGeU);
    const Row rows[] = {
        {"add", count(Opcode::kAdd), 3072},
        {"if-jump", count(Opcode::kIfTJmp, Opcode::kIfFJmp), 2048},
        {"cmp", cmps, 2048},
        {"move", count(Opcode::kMov), 1027},
        {"and", count(Opcode::kAnd, Opcode::kAnd3), 1024},
        {"jump", count(Opcode::kJmp), 513},
        {"enter", count(Opcode::kEnter), 1},
        {"return", count(Opcode::kReturn), 1},
    };

    // The VAX side, on the register-based comparator backend.
    {
        vax::VaxProgram vp = vax::compileForVax(fig3Source(1024));
        vax::VaxMachine vm(vp);
        const vax::VaxResult vr = vm.run();
        std::printf("VAX comparator column:\n\n%s\n",
                    vr.histogramTable().c_str());
        struct VRow
        {
            const char* name;
            std::uint64_t mine;
            std::uint64_t paper;
        };
        const VRow vrows[] = {
            {"incl", vr.count(vax::VOp::kIncl), 2048},
            {"jbr", vr.count(vax::VOp::kJbr), 1536},
            {"movl", vr.count(vax::VOp::kMovl), 1026},
            {"cmpl", vr.count(vax::VOp::kCmpl), 1025},
            {"jgeq", vr.count(vax::VOp::kJgeq), 1025},
            {"addl2", vr.count(vax::VOp::kAddl2), 1024},
            {"bitl", vr.count(vax::VOp::kBitl), 1024},
            {"jeql", vr.count(vax::VOp::kJeql), 1024},
            {"clrl", vr.count(vax::VOp::kClrl), 2},
            {"ret", vr.count(vax::VOp::kRet), 1},
            {"subl2", vr.count(vax::VOp::kSubl2), 1},
        };
        std::printf("Comparison against the paper's VAX column:\n");
        std::printf("%-10s %10s %10s %8s\n", "Opcode", "ours", "paper",
                    "delta");
        for (const VRow& row : vrows) {
            std::printf("%-10s %10llu %10llu %+8lld\n", row.name,
                        static_cast<unsigned long long>(row.mine),
                        static_cast<unsigned long long>(row.paper),
                        static_cast<long long>(row.mine) -
                            static_cast<long long>(row.paper));
        }
        std::printf("Total instructions: ours %llu, paper 9736\n\n",
                    static_cast<unsigned long long>(vr.instructions));
        std::printf("The paper's claim — 'The result in terms of number "
                    "of instructions executed was\nessentially "
                    "identical' (9,734 vs 9,736) — reproduces: our two "
                    "backends land within a\nfew instructions of both "
                    "columns.\n\n");
    }

    std::printf("Comparison against the paper's CRISP column:\n");
    std::printf("%-10s %10s %10s %8s\n", "Opcode", "ours", "paper",
                "delta");
    long long total_delta = 0;
    for (const Row& row : rows) {
        const long long d = static_cast<long long>(row.mine) -
                            static_cast<long long>(row.paper);
        total_delta += d > 0 ? d : -d;
        std::printf("%-10s %10llu %10llu %+8lld\n", row.name,
                    static_cast<unsigned long long>(row.mine),
                    static_cast<unsigned long long>(row.paper), d);
    }
    std::printf("Total instructions: ours %llu, paper 9734 "
                "(|per-opcode deltas| sum = %lld)\n",
                static_cast<unsigned long long>(res.instructions),
                total_delta);
    std::printf("\nDeltas stem from the paper's listing leaving `sum` "
                "uninitialized (we add `sum = 0`),\nour explicit "
                "return-value move, and the crt0 call/halt pair.\n");
    return 0;
}
