/**
 * @file
 * Figure 2 is the branch-folding datapath schematic (instruction queue
 * QA..QE, the tpcmx offset multiplexor, the branch adjust, and the
 * three Next-PC sources). This bench drives the decode-and-fold logic
 * through every path of that schematic and prints what the hardware
 * would compute:
 *
 *   - instruction length decode from the first parcel (ilen<0:2>);
 *   - Next-PC source 1: PDR.PC + ilen (sequential);
 *   - Next-PC source 2: 32-bit address from the QB/QC parcels;
 *   - Next-PC source 3: 10-bit offset from QB (1-parcel carrier) or QD
 *     (3-parcel carrier), via the branch adjust;
 *   - prediction bit steering target vs fall-through into Next-PC /
 *     Alternate Next-PC.
 */

#include <cstdio>
#include <vector>

#include "isa/encoding.hh"
#include "sim/decoded.hh"

using namespace crisp;

namespace
{

void
show(const char* what, Addr pc, const std::vector<Instruction>& insts)
{
    std::vector<Parcel> window;
    for (const Instruction& i : insts)
        encodeAppend(i, window);

    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(pc, window, /*at_end=*/true);
    if (!di) {
        std::printf("%-34s -> (window too small)\n", what);
        return;
    }
    std::printf("%-34s -> %s\n", what, di->toString().c_str());
}

} // namespace

int
main()
{
    std::printf("Figure 2 datapath walk-through (decode-and-fold "
                "logic)\n\n");

    std::printf("Instruction length decode from the first parcel "
                "(ilen):\n");
    for (const Instruction& i : {
             Instruction::alu(Opcode::kAdd, Operand::stack(1),
                              Operand::stack(2)),
             Instruction::alu(Opcode::kAdd, Operand::stack(1),
                              Operand::imm(1000)),
             Instruction::alu(Opcode::kAdd, Operand::abs(0x123456),
                              Operand::imm(1 << 20)),
             Instruction::branchRel(Opcode::kJmp, 100),
             Instruction::branchFar(Opcode::kJmp, BranchMode::kAbs,
                                    0x4000),
         }) {
        Parcel buf[kMaxParcels];
        encode(i, buf);
        std::printf("  %-28s ilen = %d parcels\n",
                    i.toString(0x1000).c_str(),
                    instructionLength(buf[0]));
    }

    const Addr pc = 0x2000;
    std::printf("\nNext-PC sources and folding:\n");

    // Source 1: sequential.
    show("plain add (sequential Next-PC)", pc,
         {Instruction::alu(Opcode::kAdd, Operand::stack(0),
                           Operand::imm(1))});

    // Source 3 via QB: one-parcel carrier + one-parcel branch, branch
    // adjust = 2 bytes.
    show("1-parcel add + 1-parcel jmp", pc,
         {Instruction::alu(Opcode::kAdd, Operand::stack(0),
                           Operand::imm(1)),
          Instruction::branchRel(Opcode::kJmp, 0x40)});

    // Source 3 via QD: three-parcel carrier, branch adjust = 6 bytes.
    show("3-parcel cmp + 1-parcel iftjmp", pc,
         {Instruction::cmp(Opcode::kCmpLt, Operand::stack(0),
                           Operand::imm(1024)),
          Instruction::branchRel(Opcode::kIfTJmp, -0x20, true)});

    // Prediction bit steers the predicted path into Next-PC.
    show("folded iftjmp predicted TAKEN", pc,
         {Instruction::alu(Opcode::kMov, Operand::stack(0),
                           Operand::stack(1)),
          Instruction::branchRel(Opcode::kIfTJmp, 0x10, true)});
    show("folded iftjmp predicted NOT taken", pc,
         {Instruction::alu(Opcode::kMov, Operand::stack(0),
                           Operand::stack(1)),
          Instruction::branchRel(Opcode::kIfTJmp, 0x10, false)});

    // Source 2: 32-bit address from QB/QC (three-parcel branch: not
    // folded, gets its own entry).
    show("3-parcel absolute jmp (lone)", pc,
         {Instruction::branchFar(Opcode::kJmp, BranchMode::kAbs,
                                 0x7654)});

    // Non-folding cases.
    std::printf("\nCases CRISP chooses not to fold:\n");
    show("5-parcel carrier + branch", pc,
         {Instruction::alu(Opcode::kAdd, Operand::abs(0x123456),
                           Operand::imm(1 << 20)),
          Instruction::branchRel(Opcode::kJmp, 0x40)});
    show("branch after branch (lone)", pc,
         {Instruction::branchRel(Opcode::kJmp, 0x40),
          Instruction::branchRel(Opcode::kJmp, 0x60)});
    show("carrier + 3-parcel branch", pc,
         {Instruction::alu(Opcode::kAdd, Operand::stack(0),
                           Operand::imm(1)),
          Instruction::branchFar(Opcode::kJmp, BranchMode::kAbs,
                                 0x4000)});

    std::printf("\nFold policy comparison on the same window (add + "
                "jmp with a 5-parcel add):\n");
    for (FoldPolicy p :
         {FoldPolicy::kNone, FoldPolicy::kCrisp, FoldPolicy::kAll}) {
        std::vector<Parcel> window;
        encodeAppend(Instruction::alu(Opcode::kAdd, Operand::abs(0x123456),
                                      Operand::imm(1 << 20)),
                     window);
        encodeAppend(Instruction::branchRel(Opcode::kJmp, 0x40), window);
        FoldDecoder dec(p);
        const auto di = dec.decodeAt(pc, window, true);
        const char* pname = p == FoldPolicy::kNone    ? "kNone "
                            : p == FoldPolicy::kCrisp ? "kCrisp"
                                                      : "kAll  ";
        std::printf("  policy %s -> folded=%s\n", pname,
                    di && di->folded ? "yes" : "no");
    }
    return 0;
}
