/**
 * @file
 * Ablation: basic-block size sensitivity. The paper: "Because basic
 * block sizes in CRISP are typically short, on the order of 3
 * instructions, we decided that branch prediction would be a better
 * technique than delayed branch. Delayed branch might be more
 * effective ... where the basic blocks are somewhat larger."
 *
 * Method: a loop whose body contains B independent statements plus an
 * unpredictable (alternating) conditional, run on (a) full CRISP
 * (folding + prediction + spreading), (b) CRISP without folding, and
 * (c) the one-delay-slot baseline machine.
 */

#include <cstdio>
#include <sstream>

#include "baseline/delayed.hh" // plain and annulling variants
#include "cc/compiler.hh"
#include "sim/cpu.hh"

using namespace crisp;

namespace
{

std::string
makeProgram(int block_size, int iters)
{
    std::ostringstream os;
    os << "int a; int b;\nint main() {\n    int i";
    for (int j = 0; j < block_size; ++j)
        os << ", x" << j;
    os << ";\n";
    for (int j = 0; j < block_size; ++j)
        os << "    x" << j << " = 0;\n";
    os << "    a = 0; b = 0;\n";
    os << "    for (i = 0; i < " << iters << "; i++) {\n";
    for (int j = 0; j < block_size; ++j)
        os << "        x" << j << " = x" << j << " + i;\n";
    os << "        if (i & 1) a = a + 1; else b = b + 1;\n";
    os << "    }\n    return a";
    for (int j = 0; j < block_size; ++j)
        os << " + x" << j;
    os << ";\n}\n";
    return os.str();
}

} // namespace

int
main()
{
    const int iters = 2000;

    std::printf("Basic-block-size ablation: cycles per iteration "
                "(%d iterations, alternating if)\n",
                iters);
    std::printf("%-6s %14s %14s %14s %14s %18s\n", "B",
                "CRISP(full)", "CRISP(nofold)", "delayed-slot",
                "annulling", "CRISP advantage");

    for (int b : {1, 2, 3, 4, 6, 8, 12}) {
        const std::string src = makeProgram(b, iters);

        cc::CompileOptions full;
        const auto rf = cc::compile(src, full);
        CrispCpu cpu1(rf.program);
        const double c_full =
            static_cast<double>(cpu1.run().cycles) / iters;

        SimConfig nofold_cfg;
        nofold_cfg.foldPolicy = FoldPolicy::kNone;
        CrispCpu cpu2(rf.program, nofold_cfg);
        const double c_nofold =
            static_cast<double>(cpu2.run().cycles) / iters;

        cc::CompileOptions del;
        del.delaySlots = true;
        const auto rd = cc::compile(src, del);
        DelayedBranchCpu cpu3(rd.program);
        const double c_delay =
            static_cast<double>(cpu3.run().cycles) / iters;

        cc::CompileOptions ann;
        ann.delaySlots = true;
        ann.annulSlots = true;
        const auto ra = cc::compile(src, ann);
        DelayedBranchCpu cpu4(ra.program, /*annulling=*/true);
        const double c_annul =
            static_cast<double>(cpu4.run().cycles) / iters;

        std::printf("%-6d %14.2f %14.2f %14.2f %14.2f %17.1f%%\n", b,
                    c_full, c_nofold, c_delay, c_annul,
                    100.0 * (c_annul / c_full - 1.0));
    }

    std::printf("\nWith larger blocks the delayed machine fills its "
                "slots and amortizes branch cost,\nnarrowing CRISP's "
                "relative advantage — the paper's rationale for "
                "choosing prediction\n+ folding at CRISP's ~3-"
                "instruction block size.\n");
    return 0;
}
