/**
 * @file
 * Ablation: fold policy. The paper: "CRISP does not try to fold all
 * branch instructions, only those that occur with the greatest
 * frequency. CRISP's policy is to only fold one and three parcel
 * non-branching instructions with one parcel branches. Doing the
 * remaining cases significantly increases the amount of hardware
 * required, with only a marginal increase in performance."
 */

#include <cstdio>

#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("Fold-policy ablation (cycles / issued instructions)\n");
    std::printf("%-8s | %12s %9s | %12s %9s | %12s %9s | %s\n",
                "Program", "none:cyc", "issued", "crisp:cyc", "issued",
                "all:cyc", "issued", "all-vs-crisp speedup");

    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        SimStats s[3];
        int i = 0;
        for (FoldPolicy p :
             {FoldPolicy::kNone, FoldPolicy::kCrisp, FoldPolicy::kAll}) {
            SimConfig cfg;
            cfg.foldPolicy = p;
            CrispCpu cpu(r.program, cfg);
            s[i++] = cpu.run();
        }
        std::printf(
            "%-8s | %12llu %9llu | %12llu %9llu | %12llu %9llu | "
            "%+.2f%%\n",
            w.name.c_str(),
            static_cast<unsigned long long>(s[0].cycles),
            static_cast<unsigned long long>(s[0].issued),
            static_cast<unsigned long long>(s[1].cycles),
            static_cast<unsigned long long>(s[1].issued),
            static_cast<unsigned long long>(s[2].cycles),
            static_cast<unsigned long long>(s[2].issued),
            100.0 * (static_cast<double>(s[1].cycles) /
                         static_cast<double>(s[2].cycles) -
                     1.0));
    }
    std::printf("\nkAll additionally folds five-parcel carriers; the "
                "last column shows how little\nit buys over the CRISP "
                "policy, supporting the paper's hardware/benefit "
                "trade-off.\n");
    return 0;
}
