/**
 * @file
 * Ablation: fold policy. The paper: "CRISP does not try to fold all
 * branch instructions, only those that occur with the greatest
 * frequency. CRISP's policy is to only fold one and three parcel
 * non-branching instructions with one parcel branches. Doing the
 * remaining cases significantly increases the amount of hardware
 * required, with only a marginal increase in performance."
 *
 * The (workload x policy) grid points are independent simulations, so
 * they fan out over a thread pool; results are stored by grid index
 * and printed in workload order, identical for any worker count.
 */

#include <cstdio>
#include <vector>

#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "util/thread_pool.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    constexpr FoldPolicy kPolicies[] = {
        FoldPolicy::kNone, FoldPolicy::kCrisp, FoldPolicy::kAll};
    const std::vector<Workload>& ws = allWorkloads();
    std::vector<SimStats> grid(ws.size() * 3);

    util::ThreadPool pool(util::ThreadPool::defaultThreads());
    pool.parallelFor(grid.size(), [&](std::size_t i) {
        const Workload& w = ws[i / 3];
        const auto r = cc::compile(w.source);
        SimConfig cfg;
        cfg.foldPolicy = kPolicies[i % 3];
        CrispCpu cpu(r.program, cfg);
        grid[i] = cpu.run();
    });

    std::printf("Fold-policy ablation (cycles / issued instructions)\n");
    std::printf("%-8s | %12s %9s | %12s %9s | %12s %9s | %s\n",
                "Program", "none:cyc", "issued", "crisp:cyc", "issued",
                "all:cyc", "issued", "all-vs-crisp speedup");

    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const SimStats* s = &grid[wi * 3];
        std::printf(
            "%-8s | %12llu %9llu | %12llu %9llu | %12llu %9llu | "
            "%+.2f%%\n",
            ws[wi].name.c_str(),
            static_cast<unsigned long long>(s[0].cycles),
            static_cast<unsigned long long>(s[0].issued),
            static_cast<unsigned long long>(s[1].cycles),
            static_cast<unsigned long long>(s[1].issued),
            static_cast<unsigned long long>(s[2].cycles),
            static_cast<unsigned long long>(s[2].issued),
            100.0 * (static_cast<double>(s[1].cycles) /
                         static_cast<double>(s[2].cycles) -
                     1.0));
    }
    std::printf("\nkAll additionally folds five-parcel carriers; the "
                "last column shows how little\nit buys over the CRISP "
                "policy, supporting the paper's hardware/benefit "
                "trade-off.\n");
    return 0;
}
